package runtime

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"parsec/internal/ptg"
	"parsec/internal/sched"
)

// sleeperGraph builds n independent tasks whose bodies sleep for d and
// count executions — enough runway for a cancellation to land mid-run.
func sleeperGraph(n int, d time.Duration, ran *atomic.Int64) *ptg.Graph {
	g := ptg.NewGraph("sleepers")
	tc := g.Class("SLEEP")
	tc.Domain = func(emit func(ptg.Args)) {
		for i := 0; i < n; i++ {
			emit(ptg.A1(i))
		}
	}
	f := tc.AddFlow("D", ptg.Write)
	f.InNew(nil, func(a ptg.Args) int64 { return 8 })
	tc.Body = func(ctx *ptg.Ctx) {
		time.Sleep(d)
		ran.Add(1)
		ctx.Out[0] = 1
	}
	return g
}

// TestRunCancelMidRun cancels a run partway through: Run must return
// ErrCanceled promptly, without executing the whole graph.
func TestRunCancelMidRun(t *testing.T) {
	var ran atomic.Int64
	const n = 400
	g := sleeperGraph(n, 2*time.Millisecond, &ran)
	cancel := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(cancel)
	}()
	_, err := Run(g, Config{Workers: 2, Queues: sched.PerWorkerSteal, Cancel: cancel})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := ran.Load(); got == 0 || got >= n {
		t.Fatalf("ran %d of %d tasks; want some but not all", got, n)
	}
}

// TestRunCancelBeforeStart runs with an already-fired cancellation: the
// run must abort immediately (workers may still complete a handful of
// tasks they popped before observing the halt).
func TestRunCancelBeforeStart(t *testing.T) {
	var ran atomic.Int64
	g := sleeperGraph(64, time.Millisecond, &ran)
	cancel := make(chan struct{})
	close(cancel)
	_, err := Run(g, Config{Workers: 2, Cancel: cancel})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := ran.Load(); got >= 64 {
		t.Fatalf("ran all %d tasks despite pre-fired cancel", got)
	}
}

// TestRunNilCancelUnaffected pins that a nil Cancel leaves Run's happy
// path untouched.
func TestRunNilCancelUnaffected(t *testing.T) {
	var ran atomic.Int64
	g := sleeperGraph(8, 0, &ran)
	rep, err := Run(g, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != 8 || ran.Load() != 8 {
		t.Fatalf("tasks = %d, ran = %d, want 8", rep.Tasks, ran.Load())
	}
}

// TestRunCancelAfterDone pins that a cancellation arriving after the
// graph completed does not turn a successful run into an error.
func TestRunCancelAfterDone(t *testing.T) {
	var ran atomic.Int64
	g := sleeperGraph(4, 0, &ran)
	cancel := make(chan struct{})
	rep, err := Run(g, Config{Workers: 2, Cancel: cancel})
	close(cancel)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != 4 {
		t.Fatalf("tasks = %d, want 4", rep.Tasks)
	}
}
