package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parsec/internal/ptg"
	"parsec/internal/sched"
)

// diamondGraph: SRC(0) fans out to MID(i) for i in 0..n-1, which all feed
// SINK(0). Bodies accumulate into a shared slice to verify execution.
func diamondGraph(n int, log *[]string, mu *sync.Mutex) *ptg.Graph {
	g := ptg.NewGraph("diamond")
	record := func(s string) {
		mu.Lock()
		*log = append(*log, s)
		mu.Unlock()
	}

	src := g.Class("SRC")
	src.Domain = func(emit func(ptg.Args)) { emit(ptg.A1(0)) }
	srcFlow := src.AddFlow("D", ptg.Write)
	srcFlow.InNew(nil, func(a ptg.Args) int64 { return 8 })
	for i := 0; i < n; i++ {
		i := i
		srcFlow.Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "MID", Args: ptg.A1(i)}, "D"
		})
	}
	src.Body = func(ctx *ptg.Ctx) {
		record("SRC")
		ctx.Out[0] = 100
	}

	mid := g.Class("MID")
	mid.Domain = func(emit func(ptg.Args)) {
		for i := 0; i < n; i++ {
			emit(ptg.A1(i))
		}
	}
	mid.Priority = func(a ptg.Args) int64 { return int64(n - a[0]) }
	mid.AddFlow("D", ptg.RW).
		In(nil, func(a ptg.Args) (ptg.TaskRef, string) { return ptg.TaskRef{Class: "SRC", Args: ptg.A1(0)}, "D" }).
		Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "SINK", Args: ptg.A1(0)}, fmt.Sprintf("I%d", a[0])
		})
	mid.Body = func(ctx *ptg.Ctx) {
		record(fmt.Sprintf("MID%d", ctx.Args[0]))
		ctx.Out[0] = ctx.In[0].(int) + ctx.Args[0]
	}

	sink := g.Class("SINK")
	sink.Domain = func(emit func(ptg.Args)) { emit(ptg.A1(0)) }
	for i := 0; i < n; i++ {
		i := i
		sink.AddFlow(fmt.Sprintf("I%d", i), ptg.Read).
			In(nil, func(a ptg.Args) (ptg.TaskRef, string) { return ptg.TaskRef{Class: "MID", Args: ptg.A1(i)}, "D" })
	}
	sink.Body = func(ctx *ptg.Ctx) {
		sum := 0
		for _, v := range ctx.In {
			sum += v.(int)
		}
		record(fmt.Sprintf("SINK=%d", sum))
	}
	return g
}

func TestRunDiamond(t *testing.T) {
	var log []string
	var mu sync.Mutex
	g := diamondGraph(4, &log, &mu)
	rep, err := Run(g, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != 6 {
		t.Errorf("tasks = %d, want 6", rep.Tasks)
	}
	if rep.ByClass["MID"] != 4 {
		t.Errorf("ByClass = %v", rep.ByClass)
	}
	// SRC first, SINK last, and the sum must be 4*100 + 0+1+2+3 = 406.
	if log[0] != "SRC" || log[len(log)-1] != "SINK=406" {
		t.Errorf("log = %v", log)
	}
}

func TestRunSingleWorkerPriorityOrder(t *testing.T) {
	var log []string
	var mu sync.Mutex
	g := diamondGraph(5, &log, &mu)
	if _, err := Run(g, Config{Workers: 1, Policy: sched.PriorityOrder}); err != nil {
		t.Fatal(err)
	}
	// With one worker and priority = n - i, the MIDs must run 0,1,2,3,4.
	want := []string{"SRC", "MID0", "MID1", "MID2", "MID3", "MID4", "SINK=510"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Errorf("log = %v, want %v", log, want)
	}
}

func TestRunSingleWorkerLIFOIgnoresPriority(t *testing.T) {
	var log []string
	var mu sync.Mutex
	g := diamondGraph(5, &log, &mu)
	if _, err := Run(g, Config{Workers: 1, Policy: sched.LIFOOrder}); err != nil {
		t.Fatal(err)
	}
	// LIFO: after SRC completes, MIDs enqueue 0..4 and pop 4..0.
	want := []string{"SRC", "MID4", "MID3", "MID2", "MID1", "MID0", "SINK=510"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Errorf("log = %v, want %v", log, want)
	}
}

func TestRunChainSerializes(t *testing.T) {
	// A linear chain must execute in order even with many workers.
	const n = 50
	g := ptg.NewGraph("chain")
	var order []int
	var mu sync.Mutex
	c := g.Class("STEP")
	c.Domain = func(emit func(ptg.Args)) {
		for i := 0; i < n; i++ {
			emit(ptg.A1(i))
		}
	}
	c.AddFlow("D", ptg.RW).
		InNew(func(a ptg.Args) bool { return a[0] == 0 }, func(a ptg.Args) int64 { return 8 }).
		In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "STEP", Args: ptg.A1(a[0] - 1)}, "D"
		}).
		Out(func(a ptg.Args) bool { return a[0] < n-1 }, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "STEP", Args: ptg.A1(a[0] + 1)}, "D"
		})
	c.Body = func(ctx *ptg.Ctx) {
		mu.Lock()
		order = append(order, ctx.Args[0])
		mu.Unlock()
	}
	if _, err := Run(g, Config{Workers: 8}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("chain executed out of order: %v", order)
		}
	}
}

func TestRunParallelismAchieved(t *testing.T) {
	// n independent tasks with a rendezvous body: with w workers, at
	// least 2 must overlap (weak but race-free check via max concurrency).
	const n = 16
	g := ptg.NewGraph("par")
	var cur, max atomic.Int32
	c := g.Class("T")
	c.Domain = func(emit func(ptg.Args)) {
		for i := 0; i < n; i++ {
			emit(ptg.A1(i))
		}
	}
	c.Body = func(ctx *ptg.Ctx) {
		v := cur.Add(1)
		for {
			m := max.Load()
			if v <= m || max.CompareAndSwap(m, v) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
	}
	if _, err := Run(g, Config{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if max.Load() < 2 {
		t.Errorf("max concurrency %d, want >= 2", max.Load())
	}
}

func TestRunBodyPanicAborts(t *testing.T) {
	g := ptg.NewGraph("boom")
	c := g.Class("T")
	c.Domain = func(emit func(ptg.Args)) { emit(ptg.A1(0)) }
	c.Body = func(ctx *ptg.Ctx) { panic("kaboom") }
	if _, err := Run(g, Config{Workers: 2}); err == nil {
		t.Error("panic not surfaced as error")
	}
}

func TestRunDeadlockDetected(t *testing.T) {
	// Two tasks waiting on each other's outputs never become ready.
	g := ptg.NewGraph("dl")
	c := g.Class("T")
	c.Domain = func(emit func(ptg.Args)) { emit(ptg.A1(0)); emit(ptg.A1(1)) }
	c.AddFlow("D", ptg.RW).
		In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "T", Args: ptg.A1(1 - a[0])}, "D"
		}).
		Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "T", Args: ptg.A1(1 - a[0])}, "D"
		})
	if _, err := Run(g, Config{Workers: 2}); err == nil {
		t.Error("deadlock not detected")
	}
}

func TestObserverReceivesAllTasks(t *testing.T) {
	var log []string
	var mu sync.Mutex
	g := diamondGraph(3, &log, &mu)
	var events []Event
	var emu sync.Mutex
	rep, err := Run(g, Config{Workers: 2, Observer: func(e Event) {
		emu.Lock()
		events = append(events, e)
		emu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != rep.Tasks {
		t.Errorf("observer saw %d events, want %d", len(events), rep.Tasks)
	}
	for _, e := range events {
		if e.End < e.Start {
			t.Errorf("event %v has End < Start", e.Task)
		}
		if e.Worker < 0 || e.Worker >= 2 {
			t.Errorf("event worker %d out of range", e.Worker)
		}
	}
}

func TestReportString(t *testing.T) {
	var log []string
	var mu sync.Mutex
	rep, err := Run(diamondGraph(2, &log, &mu), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.String() == "" || rep.Workers != 1 {
		t.Error("report formatting")
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	var log []string
	var mu sync.Mutex
	rep, err := Run(diamondGraph(2, &log, &mu), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers <= 0 {
		t.Errorf("default workers = %d", rep.Workers)
	}
}

func TestQueueModesComplete(t *testing.T) {
	for _, mode := range []sched.QueueMode{sched.SharedQueue, sched.PerWorker, sched.PerWorkerSteal} {
		var log []string
		var mu sync.Mutex
		g := diamondGraph(6, &log, &mu)
		rep, err := Run(g, Config{Workers: 3, Queues: mode})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if rep.Tasks != 8 {
			t.Errorf("mode %d: tasks = %d", mode, rep.Tasks)
		}
		if log[len(log)-1] != "SINK=615" {
			t.Errorf("mode %d: wrong result %v", mode, log[len(log)-1])
		}
	}
}

func TestQueueModesChainCorrect(t *testing.T) {
	// A serial chain must stay ordered under pinned queues too (the chain
	// tasks hash to different workers, so each handoff crosses queues).
	const n = 40
	for _, mode := range []sched.QueueMode{sched.PerWorker, sched.PerWorkerSteal} {
		g := ptg.NewGraph("chain")
		var order []int
		var mu sync.Mutex
		c := g.Class("STEP")
		c.Domain = func(emit func(ptg.Args)) {
			for i := 0; i < n; i++ {
				emit(ptg.A1(i))
			}
		}
		c.AddFlow("D", ptg.RW).
			InNew(func(a ptg.Args) bool { return a[0] == 0 }, func(a ptg.Args) int64 { return 8 }).
			In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
				return ptg.TaskRef{Class: "STEP", Args: ptg.A1(a[0] - 1)}, "D"
			}).
			Out(func(a ptg.Args) bool { return a[0] < n-1 }, func(a ptg.Args) (ptg.TaskRef, string) {
				return ptg.TaskRef{Class: "STEP", Args: ptg.A1(a[0] + 1)}, "D"
			})
		c.Body = func(ctx *ptg.Ctx) {
			mu.Lock()
			order = append(order, ctx.Args[0])
			mu.Unlock()
		}
		if _, err := Run(g, Config{Workers: 4, Queues: mode}); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("mode %d: out of order: %v", mode, order)
			}
		}
	}
}

func TestStealingUsesIdleWorkers(t *testing.T) {
	// All tasks hash to worker 0 (Seq stride = workers); with stealing,
	// other workers pick them up and the run must still complete quickly.
	g := ptg.NewGraph("skewed")
	var count atomic.Int32
	c := g.Class("T")
	c.Domain = func(emit func(ptg.Args)) {
		for i := 0; i < 12; i++ {
			emit(ptg.A1(i))
		}
	}
	c.Body = func(ctx *ptg.Ctx) {
		count.Add(1)
		time.Sleep(time.Millisecond)
	}
	rep, err := Run(g, Config{Workers: 4, Queues: sched.PerWorkerSteal})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 12 || rep.Tasks != 12 {
		t.Errorf("count = %d", count.Load())
	}
}
