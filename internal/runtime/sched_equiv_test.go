package runtime

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"parsec/internal/ptg"
	"parsec/internal/sched"
)

// Scheduler equivalence: every scheduling configuration (policy × queue
// mode × worker count) must compute the same answer and execute the same
// task set as the reference single-worker shared-queue run. The graphs
// mirror the paper's workload shapes: a serial chain (no parallelism to
// exploit), a fan-out/reduction tree like the v2 rewrite's fully-split
// expressions (§V, Fig 4), and prioritized independent chains like the
// v5 variant's per-term chains with priority expressions (§IV-C).
//
// Each builder closes over a fresh result cell so graphs are rebuilt per
// run; the bodies fold payloads in a schedule-independent order (serial
// chains, or summing a SINK's inputs in flow order), so any divergence
// is a scheduler bug, not floating-point or ordering noise.

type equivResult struct {
	mu  sync.Mutex
	val int64
}

func (r *equivResult) set(v int64) {
	r.mu.Lock()
	r.val = v
	r.mu.Unlock()
}

// equivChain: one serial chain of n steps threading an int64 payload;
// step i computes out = in*3 + i.
func equivChain(n int, res *equivResult) *ptg.Graph {
	g := ptg.NewGraph("equiv-chain")
	c := g.Class("STEP")
	c.Domain = func(emit func(ptg.Args)) {
		for i := 0; i < n; i++ {
			emit(ptg.A1(i))
		}
	}
	c.AddFlow("D", ptg.RW).
		InNew(func(a ptg.Args) bool { return a[0] == 0 }, func(a ptg.Args) int64 { return 8 }).
		In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "STEP", Args: ptg.A1(a[0] - 1)}, "D"
		}).
		Out(func(a ptg.Args) bool { return a[0] < n-1 }, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "STEP", Args: ptg.A1(a[0] + 1)}, "D"
		})
	c.Body = func(ctx *ptg.Ctx) {
		var in int64 = 1
		if v, ok := ctx.In[0].(int64); ok {
			in = v
		}
		out := in*3 + int64(ctx.Args[0])
		ctx.Out[0] = out
		if ctx.Args[0] == n-1 {
			res.set(out)
		}
	}
	return g
}

// equivFanout: SRC fans one datum out to n MID tasks, which all reduce
// into a single SINK — the shape of a fully-split tensor-contraction
// expression (one producer, a wide middle, a reduction).
func equivFanout(n int, res *equivResult) *ptg.Graph {
	g := ptg.NewGraph("equiv-fanout")
	src := g.Class("SRC")
	src.Domain = func(emit func(ptg.Args)) { emit(ptg.A1(0)) }
	f := src.AddFlow("D", ptg.Write)
	f.InNew(nil, func(a ptg.Args) int64 { return 8 })
	for i := 0; i < n; i++ {
		i := i
		f.Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "MID", Args: ptg.A1(i)}, "D"
		})
	}
	src.Body = func(ctx *ptg.Ctx) { ctx.Out[0] = int64(7) }

	mid := g.Class("MID")
	mid.Domain = func(emit func(ptg.Args)) {
		for i := 0; i < n; i++ {
			emit(ptg.A1(i))
		}
	}
	mid.AddFlow("D", ptg.RW).
		In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "SRC", Args: ptg.A1(0)}, "D"
		}).
		Out(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "SINK", Args: ptg.A1(0)}, fmt.Sprintf("I%d", a[0])
		})
	mid.Body = func(ctx *ptg.Ctx) {
		i := int64(ctx.Args[0])
		ctx.Out[0] = ctx.In[0].(int64) + i*i
	}

	sink := g.Class("SINK")
	sink.Domain = func(emit func(ptg.Args)) { emit(ptg.A1(0)) }
	for i := 0; i < n; i++ {
		i := i
		sink.AddFlow(fmt.Sprintf("I%d", i), ptg.Read).
			In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
				return ptg.TaskRef{Class: "MID", Args: ptg.A1(i)}, "D"
			})
	}
	sink.Body = func(ctx *ptg.Ctx) {
		var sum int64
		for _, v := range ctx.In {
			sum += v.(int64)
		}
		res.set(sum)
	}
	return g
}

// equivPriorityChains: chains independent serial chains of length steps
// each, chain c carrying priority c (so priority scheduling drains them
// in a definite order), all tails reducing into one SINK.
func equivPriorityChains(chains, steps int, res *equivResult) *ptg.Graph {
	g := ptg.NewGraph("equiv-prio-chains")
	c := g.Class("STEP")
	c.Domain = func(emit func(ptg.Args)) {
		for ch := 0; ch < chains; ch++ {
			for l := 0; l < steps; l++ {
				emit(ptg.Args{ch, l})
			}
		}
	}
	c.Priority = func(a ptg.Args) int64 { return int64(a[0]) }
	c.AddFlow("D", ptg.RW).
		InNew(func(a ptg.Args) bool { return a[1] == 0 }, func(a ptg.Args) int64 { return 8 }).
		In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "STEP", Args: ptg.Args{a[0], a[1] - 1}}, "D"
		}).
		Out(func(a ptg.Args) bool { return a[1] < steps-1 }, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "STEP", Args: ptg.Args{a[0], a[1] + 1}}, "D"
		}).
		Out(func(a ptg.Args) bool { return a[1] == steps-1 }, func(a ptg.Args) (ptg.TaskRef, string) {
			return ptg.TaskRef{Class: "SINK", Args: ptg.A1(0)}, fmt.Sprintf("C%d", a[0])
		})
	c.Body = func(ctx *ptg.Ctx) {
		var in int64 = 1
		if v, ok := ctx.In[0].(int64); ok {
			in = v
		}
		ctx.Out[0] = in*2 + int64(ctx.Args[0]) + int64(ctx.Args[1])
	}

	sink := g.Class("SINK")
	sink.Domain = func(emit func(ptg.Args)) { emit(ptg.A1(0)) }
	for ch := 0; ch < chains; ch++ {
		ch := ch
		sink.AddFlow(fmt.Sprintf("C%d", ch), ptg.Read).
			In(nil, func(a ptg.Args) (ptg.TaskRef, string) {
				return ptg.TaskRef{Class: "STEP", Args: ptg.Args{ch, steps - 1}}, "D"
			})
	}
	sink.Body = func(ctx *ptg.Ctx) {
		var sum int64
		for i, v := range ctx.In {
			sum += int64(i+1) * v.(int64)
		}
		res.set(sum)
	}
	return g
}

func TestSchedulerEquivalence(t *testing.T) {
	graphs := []struct {
		name  string
		build func(res *equivResult) *ptg.Graph
	}{
		{"chain", func(res *equivResult) *ptg.Graph { return equivChain(30, res) }},
		{"fanout", func(res *equivResult) *ptg.Graph { return equivFanout(24, res) }},
		{"prio-chains", func(res *equivResult) *ptg.Graph { return equivPriorityChains(6, 8, res) }},
	}

	for _, gr := range graphs {
		gr := gr
		t.Run(gr.name, func(t *testing.T) {
			// Reference: one worker, one shared queue, priority order.
			var ref equivResult
			refRep, err := Run(gr.build(&ref), Config{Workers: 1, Queues: sched.SharedQueue, Policy: sched.PriorityOrder})
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}

			for _, pol := range []sched.Policy{sched.PriorityOrder, sched.LIFOOrder} {
				for _, q := range []sched.QueueMode{sched.SharedQueue, sched.PerWorker, sched.PerWorkerSteal} {
					for _, workers := range []int{1, 2, 8} {
						pol, q, workers := pol, q, workers
						t.Run(fmt.Sprintf("%v-%v-w%d", pol, q, workers), func(t *testing.T) {
							var res equivResult
							rep, err := Run(gr.build(&res), Config{Workers: workers, Queues: q, Policy: pol})
							if err != nil {
								t.Fatal(err)
							}
							if rep.Tasks != refRep.Tasks {
								t.Errorf("tasks = %d, want %d", rep.Tasks, refRep.Tasks)
							}
							if !reflect.DeepEqual(rep.ByClass, refRep.ByClass) {
								t.Errorf("ByClass = %v, want %v", rep.ByClass, refRep.ByClass)
							}
							if res.val != ref.val {
								t.Errorf("result = %d, want %d", res.val, ref.val)
							}
							if got := sumPerWorker(rep.Sched.PerWorkerTasks); got != int64(rep.Tasks) {
								t.Errorf("sum(PerWorkerTasks) = %d, want %d", got, rep.Tasks)
							}
						})
					}
				}
			}
		})
	}
}

func sumPerWorker(counts []int64) int64 {
	var s int64
	for _, c := range counts {
		s += c
	}
	return s
}
