package ptg

import (
	"bytes"
	"strings"
	"testing"
)

func TestExportDOT(t *testing.T) {
	g := chainGraph(2, func(int) int { return 2 })
	var buf bytes.Buffer
	if err := ExportDOT(g, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("not a DOT document")
	}
	// Chain edge GEMM(0,0) -> GEMM(0,1) must exist with flow label.
	if !strings.Contains(out, `"GEMM(0,0,0)" -> "GEMM(0,1,0)" [label="C→C"]`) {
		t.Errorf("missing chain edge:\n%s", out)
	}
	// Terminal data: reader inputs dashed from data nodes.
	if !strings.Contains(out, `"READA(0,0,0)" -> "GEMM(0,0,0)" [label="D→A"]`) {
		t.Error("missing read edge")
	}
	if !strings.Contains(out, "cylinder") {
		t.Error("missing data node shape")
	}
	// Last GEMM feeds SORT.
	if !strings.Contains(out, `"GEMM(1,1,0)" -> "SORT(1,0,0)"`) {
		t.Error("missing sort edge")
	}
}

func TestExportDOTDetectsDangling(t *testing.T) {
	g := NewGraph("dangling")
	tc := g.Class("X")
	tc.Domain = func(emit func(Args)) { emit(A1(0)) }
	tc.AddFlow("D", Write).
		InNew(nil, func(a Args) int64 { return 1 }).
		Out(nil, func(a Args) (TaskRef, string) { return TaskRef{"Y", A1(0)}, "D" })
	var buf bytes.Buffer
	if err := ExportDOT(g, &buf); err == nil {
		t.Error("dangling edge accepted")
	}
}

func TestExportDOTInvalidGraph(t *testing.T) {
	g := NewGraph("invalid")
	g.Class("X") // no Domain
	var buf bytes.Buffer
	if err := ExportDOT(g, &buf); err == nil {
		t.Error("invalid graph accepted")
	}
}

func TestAnalyzeChainVsParallel(t *testing.T) {
	// A serial chain of 10 unit tasks: work == span, max speedup 1.
	chain := chainGraph(1, func(int) int { return 10 })
	unit := func(in *Instance) int64 {
		if in.Ref.Class == "GEMM" {
			return 100
		}
		return 0
	}
	a, err := Analyze(chain, unit)
	if err != nil {
		t.Fatal(err)
	}
	if a.CriticalPath != 1000 || a.TotalWork != 1000 {
		t.Errorf("chain: %+v", a)
	}
	if a.MaxSpeedup != 1 {
		t.Errorf("chain max speedup = %v", a.MaxSpeedup)
	}
	// The critical path must walk the GEMM chain in order.
	gemms := 0
	for _, r := range a.Path {
		if r.Class == "GEMM" {
			gemms++
		}
	}
	if gemms != 10 {
		t.Errorf("critical path has %d GEMMs, want 10", gemms)
	}

	// Ten independent chains of one GEMM each: span = one task.
	wide := chainGraph(10, func(int) int { return 1 })
	a2, err := Analyze(wide, unit)
	if err != nil {
		t.Fatal(err)
	}
	if a2.TotalWork != 1000 || a2.CriticalPath != 100 {
		t.Errorf("wide: %+v", a2)
	}
	if a2.MaxSpeedup != 10 {
		t.Errorf("wide max speedup = %v", a2.MaxSpeedup)
	}
}

func TestAnalyzeCountsEdges(t *testing.T) {
	g := chainGraph(2, func(int) int { return 3 })
	a, err := Analyze(g, func(*Instance) int64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if a.Tasks != 2+6+6+6+2 {
		t.Errorf("tasks = %d", a.Tasks)
	}
	// Edges: DFILL->GEMM0 (2), GEMM chain (2x2), last GEMM->SORT (2),
	// READA->GEMM (6), READB->GEMM (6) = 20.
	if a.Edges != 20 {
		t.Errorf("edges = %d, want 20", a.Edges)
	}
	if a.String() == "" {
		t.Error("empty analysis string")
	}
}
