package ptg

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Sig is a canonical fingerprint of an instantiated graph: every task
// instance with its affinity, priority, flow structure (modes, resolved
// input sources, byte sizes), simulated cost, and every guarded output
// edge that fires. Two graphs with equal signatures instantiate the
// same DAG — same tasks, same edges, same priorities and costs — so an
// executor cannot tell them apart. The transformation-pass layer
// (internal/xform) is proven against the historical hand-written
// variant builders through these signatures.
type Sig struct {
	Tasks  int
	Edges  int
	SHA256 string
}

// String renders the signature summary.
func (s Sig) String() string {
	return fmt.Sprintf("tasks=%d edges=%d sha256=%s", s.Tasks, s.Edges, s.SHA256[:16])
}

// Signature computes the canonical fingerprint of g. The graph name is
// deliberately excluded — the signature pins structure, not labels.
// Instances are visited in deterministic enumeration order, flows in
// definition order, and every guard is evaluated exactly as the tracker
// would, so the signed edge set is the executed one.
func Signature(g *Graph) (Sig, error) {
	if err := g.Validate(); err != nil {
		return Sig{}, err
	}
	var b strings.Builder
	var sig Sig
	for _, tc := range g.Classes() {
		tc.Domain(func(a Args) {
			sig.Tasks++
			ref := TaskRef{Class: tc.Name, Args: a}
			fmt.Fprintf(&b, "task %s", ref)
			if tc.Affinity != nil {
				fmt.Fprintf(&b, " node=%d", tc.Affinity(a))
			}
			if tc.Priority != nil {
				fmt.Fprintf(&b, " prio=%d", tc.Priority(a))
			}
			if tc.Cost != nil {
				c := tc.Cost(a)
				fmt.Fprintf(&b, " cost={f=%d m=%d g=%d warm=%t}", c.Flops, c.MemBytes, c.GemmBytes, c.Warm)
			}
			b.WriteByte('\n')
			for _, f := range tc.Flows {
				fmt.Fprintf(&b, "  flow %s %s", f.Mode, f.Name)
				if tc.FlowBytes != nil {
					fmt.Fprintf(&b, " bytes=%d", tc.FlowBytes(a, f.Name))
				}
				if tc.InBytes != nil {
					fmt.Fprintf(&b, " inbytes=%d", tc.InBytes(a, f.Name))
				}
				b.WriteByte('\n')
				for _, in := range f.Ins {
					if in.Guard != nil && !in.Guard(a) {
						continue
					}
					switch {
					case in.Producer != nil:
						src, flow := in.Producer(a)
						fmt.Fprintf(&b, "    <- %s.%s\n", src, flow)
					case in.Data != nil:
						d := in.Data(a)
						fmt.Fprintf(&b, "    <- data %s@%d:%d\n", d.ID, d.Node, d.Bytes)
					default:
						fmt.Fprintf(&b, "    <- new %d\n", in.New(a))
					}
					// Only the first passing alternative supplies the flow.
					break
				}
				for _, out := range f.Outs {
					if out.Guard != nil && !out.Guard(a) {
						continue
					}
					sig.Edges++
					if out.Consumer != nil {
						dst, flow := out.Consumer(a)
						fmt.Fprintf(&b, "    -> %s.%s\n", dst, flow)
					} else {
						d := out.Data(a)
						fmt.Fprintf(&b, "    -> data %s@%d:%d\n", d.ID, d.Node, d.Bytes)
					}
				}
			}
		})
	}
	sum := sha256.Sum256([]byte(b.String()))
	sig.SHA256 = hex.EncodeToString(sum[:])
	return sig, nil
}
