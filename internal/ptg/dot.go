package ptg

import (
	"fmt"
	"io"
)

// classColors give DAG nodes stable colors per task class in DOT output.
var dotColors = []string{
	"#c0392b", "#2e6da4", "#8e44ad", "#f1c40f", "#e67e22",
	"#7ed67e", "#16a085", "#2c3e50", "#95a5a6",
}

// ExportDOT writes the fully instantiated task graph in Graphviz DOT
// format: one node per task instance, one edge per dataflow dependency,
// labeled with the flow names. The PTG itself never materializes this
// DAG during execution (§II-B) — the export exists for inspection and
// debugging of small problems.
func ExportDOT(g *Graph, w io.Writer) error {
	if err := g.Validate(); err != nil {
		return err
	}
	instances := make(map[TaskRef]bool)
	for _, tc := range g.Classes() {
		tc.Domain(func(a Args) { instances[TaskRef{Class: tc.Name, Args: a}] = true })
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n  node [shape=box, style=filled, fontname=monospace];\n", g.Name); err != nil {
		return err
	}
	colorOf := map[string]string{}
	for i, tc := range g.Classes() {
		colorOf[tc.Name] = dotColors[i%len(dotColors)]
	}
	refs := make([]TaskRef, 0, len(instances))
	for r := range instances {
		refs = append(refs, r)
	}
	g.SortRefs(refs)
	for _, r := range refs {
		fmt.Fprintf(w, "  %q [fillcolor=%q];\n", r.String(), colorOf[r.Class])
	}
	for _, r := range refs {
		tc := g.ClassByName(r.Class)
		for _, f := range tc.Flows {
			for _, out := range f.Outs {
				if out.Guard != nil && !out.Guard(r.Args) {
					continue
				}
				switch {
				case out.Consumer != nil:
					to, flow := out.Consumer(r.Args)
					if !instances[to] {
						return fmt.Errorf("ptg: %v flow %s targets nonexistent %v", r, f.Name, to)
					}
					fmt.Fprintf(w, "  %q -> %q [label=%q];\n", r.String(), to.String(),
						f.Name+"→"+flow)
				case out.Data != nil:
					d := out.Data(r.Args)
					fmt.Fprintf(w, "  %q -> %q [style=dashed];\n  %q [shape=cylinder, fillcolor=\"#dddddd\"];\n",
						r.String(), d.ID, d.ID)
				}
			}
			if dep, ok := matchIn(f, r.Args); ok && dep.Data != nil {
				d := dep.Data(r.Args)
				fmt.Fprintf(w, "  %q -> %q [style=dashed];\n  %q [shape=cylinder, fillcolor=\"#dddddd\"];\n",
					d.ID, r.String(), d.ID)
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
