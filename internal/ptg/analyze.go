package ptg

import (
	"fmt"
)

// Analysis summarizes the DAG structure of an instantiated graph under a
// task-duration model: total work, critical-path length (the span), and
// the resulting upper bound on achievable speedup. These are the
// work/span bounds that explain why chain organizations (v1) stop
// scaling while parallel-GEMM organizations (v5) continue (§IV-A).
type Analysis struct {
	Tasks        int
	Edges        int
	TotalWork    int64 // sum of task durations (ns)
	CriticalPath int64 // longest duration-weighted path (ns)
	// Path is one critical path, producer to final consumer.
	Path []TaskRef
	// PathDur holds the duration charged to each Path entry, so callers
	// can attribute the critical path to task classes (see
	// internal/obsv.Profile.SetCritical).
	PathDur []int64
	// MaxSpeedup is TotalWork / CriticalPath.
	MaxSpeedup float64
}

// String summarizes the work/span analysis in one line.
func (a Analysis) String() string {
	return fmt.Sprintf("tasks=%d edges=%d work=%.3fs span=%.3fs max-speedup=%.1f",
		a.Tasks, a.Edges, float64(a.TotalWork)/1e9, float64(a.CriticalPath)/1e9, a.MaxSpeedup)
}

// Analyze instantiates the graph and computes work/span under the given
// per-instance duration function (nanoseconds). It drives the same
// tracker used for execution, so the analyzed DAG is exactly the executed
// one.
func Analyze(g *Graph, dur func(*Instance) int64) (Analysis, error) {
	tr, err := NewTracker(g)
	if err != nil {
		return Analysis{}, err
	}
	var a Analysis
	a.Tasks = tr.NumInstances()

	// dist[inst] = longest finish time over paths ending at inst;
	// pred[inst] = predecessor on that path; durs[inst] = charge.
	dist := make(map[*Instance]int64, a.Tasks)
	pred := make(map[*Instance]*Instance, a.Tasks)
	durs := make(map[*Instance]int64, a.Tasks)

	queue := append([]*Instance(nil), tr.InitialReady()...)
	var last *Instance
	for len(queue) > 0 {
		in := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if err := tr.Start(in); err != nil {
			return a, err
		}
		d := dur(in)
		if d < 0 {
			d = 0
		}
		durs[in] = d
		finish := dist[in] + d
		dist[in] = finish
		a.TotalWork += d
		if finish > a.CriticalPath {
			a.CriticalPath = finish
			last = in
		}
		dels, _, err := tr.Complete(in)
		if err != nil {
			return a, err
		}
		for _, del := range dels {
			a.Edges++
			if finish > dist[del.To] {
				dist[del.To] = finish
				pred[del.To] = in
			}
			ready, err := tr.Deliver(del.To, del.ToFlow, nil)
			if err != nil {
				return a, err
			}
			if ready {
				queue = append(queue, del.To)
			}
		}
	}
	if err := tr.CheckQuiescent(); err != nil {
		return a, err
	}
	for in := last; in != nil; in = pred[in] {
		a.Path = append(a.Path, in.Ref)
		a.PathDur = append(a.PathDur, durs[in])
	}
	// Reverse to producer-first order.
	for i, j := 0, len(a.Path)-1; i < j; i, j = i+1, j-1 {
		a.Path[i], a.Path[j] = a.Path[j], a.Path[i]
		a.PathDur[i], a.PathDur[j] = a.PathDur[j], a.PathDur[i]
	}
	if a.CriticalPath > 0 {
		a.MaxSpeedup = float64(a.TotalWork) / float64(a.CriticalPath)
	}
	return a, nil
}
