package ptg

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// InstState is the lifecycle state of a task instance.
type InstState int

const (
	StateWaiting InstState = iota // some task-sourced inputs outstanding
	StateReady                    // all inputs satisfied, not yet started
	StateRunning                  // handed to an executor
	StateDone                     // completed
)

// String names the lifecycle state.
func (s InstState) String() string {
	return [...]string{"waiting", "ready", "running", "done"}[s]
}

// NewBuffer is the payload placed on a flow satisfied by an InNew
// alternative: the task starts with a fresh buffer of the given size.
// The real runtime's body allocates it; the simulator charges nothing.
type NewBuffer struct{ Bytes int64 }

// Instance is one task instance with its dataflow bookkeeping.
//
// State is a plain field, not an atomic, by contract: transitions to
// StateReady happen under the tracker mutex and are published to the
// dequeuing executor through its ready-queue lock (the push
// happens-after the state write, the pop happens-before Start's read);
// Start and Complete run on the executing worker only. In a correct
// execution no two goroutines touch State concurrently, so the hot path
// pays no locked instructions for it.
type Instance struct {
	Ref      TaskRef
	Class    *TaskClass
	Node     int
	Priority int64
	Seq      int // creation index; deterministic tie-breaker
	State    InstState

	// In holds the payload per flow index; nil for inactive flows and
	// for task-sourced flows not yet delivered.
	In        []any
	delivered []bool
	fromTask  []bool
	pending   int
}

// String renders the instance with its affinity and state.
func (in *Instance) String() string {
	return fmt.Sprintf("%v@n%d[%v]", in.Ref, in.Node, in.State)
}

// SchedPriority returns the instance's scheduling priority, satisfying
// the scheduling core's Task interface (internal/sched).
func (in *Instance) SchedPriority() int64 { return in.Priority }

// SchedSeq returns the instance's deterministic creation ordinal, the
// scheduling core's priority tie-breaker (internal/sched).
func (in *Instance) SchedSeq() int { return in.Seq }

// Delivery instructs the executor to move the payload produced on one of
// a completed task's flows to a successor's input flow. The executor
// performs the (possibly remote) transport, then calls Tracker.Deliver.
type Delivery struct {
	From     *Instance
	FromFlow int // flow index on the producer
	To       *Instance
	ToFlow   int   // flow index on the consumer
	Bytes    int64 // simulated payload size (0 if FlowBytes is nil)
}

// TerminalWrite reports that a completed task's flow is bound to a
// terminal datum (an OutData dependency); the executor decides what, if
// anything, to do (our CCSD bodies write Global Arrays themselves, so
// executors typically treat this as informational).
type TerminalWrite struct {
	From     *Instance
	FromFlow int
	Data     DataRef
}

// Tracker materializes a graph's instances and tracks dataflow readiness.
// It is the engine both executors drive: Complete(task) returns the
// deliveries its outputs trigger; Deliver(payload) marks an input
// satisfied and reports newly ready tasks. The state-transition methods
// (Start, Complete, Deliver, CheckQuiescent) synchronize on the
// tracker's own mutex, so concurrent executors can call them directly
// without holding any scheduler lock; Done and Remaining are lock-free.
type Tracker struct {
	G         *Graph
	instances map[TaskRef]*Instance
	order     []*Instance

	mu        sync.Mutex // guards instance state transitions + completed
	remaining atomic.Int64
	completed int
}

// NewTracker validates the graph, enumerates every instance, resolves
// input alternatives, and computes initial readiness.
func NewTracker(g *Graph) (*Tracker, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	t := &Tracker{G: g, instances: make(map[TaskRef]*Instance)}
	for _, tc := range g.Classes() {
		tc.Domain(func(a Args) {
			ref := TaskRef{Class: tc.Name, Args: a}
			if _, dup := t.instances[ref]; dup {
				panic(fmt.Sprintf("ptg: domain of %s emits %v twice", tc.Name, a))
			}
			inst := &Instance{
				Ref:       ref,
				Class:     tc,
				Seq:       len(t.order),
				In:        make([]any, len(tc.Flows)),
				delivered: make([]bool, len(tc.Flows)),
				fromTask:  make([]bool, len(tc.Flows)),
			}
			if tc.Affinity != nil {
				inst.Node = tc.Affinity(a)
			}
			if tc.Priority != nil {
				inst.Priority = tc.Priority(a)
			}
			for fi, f := range tc.Flows {
				dep, ok := matchIn(f, a)
				if !ok {
					continue // inactive flow
				}
				switch {
				case dep.Producer != nil:
					inst.fromTask[fi] = true
					inst.pending++
				case dep.Data != nil:
					inst.In[fi] = dep.Data(a)
					inst.delivered[fi] = true
				case dep.New != nil:
					inst.In[fi] = NewBuffer{Bytes: dep.New(a)}
					inst.delivered[fi] = true
				}
			}
			if inst.pending == 0 {
				inst.State = StateReady
			}
			t.instances[ref] = inst
			t.order = append(t.order, inst)
		})
	}
	t.remaining.Store(int64(len(t.order)))
	return t, nil
}

// matchIn returns the first input alternative whose guard holds.
func matchIn(f *Flow, a Args) (InDep, bool) {
	for _, in := range f.Ins {
		if in.Guard == nil || in.Guard(a) {
			return in, true
		}
	}
	return InDep{}, false
}

// NumInstances returns the total number of task instances.
func (t *Tracker) NumInstances() int { return len(t.order) }

// Remaining returns the number of instances not yet completed.
func (t *Tracker) Remaining() int { return int(t.remaining.Load()) }

// Done reports whether every instance has completed.
func (t *Tracker) Done() bool { return t.remaining.Load() == 0 }

// Instance returns the instance for a reference, or nil.
func (t *Tracker) Instance(ref TaskRef) *Instance { return t.instances[ref] }

// Instances returns all instances in deterministic creation order.
// Callers must not mutate the returned slice.
func (t *Tracker) Instances() []*Instance { return t.order }

// InitialReady returns the instances ready before any completions, in
// deterministic creation order.
func (t *Tracker) InitialReady() []*Instance {
	var ready []*Instance
	for _, in := range t.order {
		if in.State == StateReady {
			ready = append(ready, in)
		}
	}
	return ready
}

// Start marks a ready instance as running. Executors call it when they
// dequeue a task; it guards against double-scheduling. It takes no lock:
// an instance reaches StateReady exactly once and only the dequeuer that
// popped it may claim it (see the Instance.State contract).
func (t *Tracker) Start(in *Instance) error {
	if in.State != StateReady {
		return fmt.Errorf("ptg: Start(%v) in state %v", in.Ref, in.State)
	}
	in.State = StateRunning
	return nil
}

// ClaimStart is Start under the tracker's lock. The lock-free Start
// contract — only the dequeuer touches a ready instance — holds inside
// one scheduler, but a distributed engine also claims tasks from
// message-handler goroutines (steal probes, takeover scans) that run
// concurrently with locked state reads, so its claims must serialize
// with the tracker's other transitions.
func (t *Tracker) ClaimStart(in *Instance) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if in.State != StateReady {
		return fmt.Errorf("ptg: Start(%v) in state %v", in.Ref, in.State)
	}
	in.State = StateRunning
	return nil
}

// Complete marks a running (or, for executors that skip Start, ready)
// instance done and evaluates its output dependencies. It returns the
// deliveries to perform and the terminal writes its flows are bound to.
func (t *Tracker) Complete(in *Instance) ([]Delivery, []TerminalWrite, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if in.State != StateRunning && in.State != StateReady {
		return nil, nil, fmt.Errorf("ptg: Complete(%v) in state %v", in.Ref, in.State)
	}
	in.State = StateDone
	t.remaining.Add(-1)
	t.completed++
	var dels []Delivery
	var writes []TerminalWrite
	a := in.Ref.Args
	for fi, f := range in.Class.Flows {
		for _, out := range f.Outs {
			if out.Guard != nil && !out.Guard(a) {
				continue
			}
			if out.Data != nil {
				writes = append(writes, TerminalWrite{From: in, FromFlow: fi, Data: out.Data(a)})
				continue
			}
			toRef, toFlowName := out.Consumer(a)
			to := t.instances[toRef]
			if to == nil {
				return nil, nil, fmt.Errorf("ptg: %v flow %s targets nonexistent task %v", in.Ref, f.Name, toRef)
			}
			toFlow, ok := to.Class.FlowIndex(toFlowName)
			if !ok {
				return nil, nil, fmt.Errorf("ptg: %v flow %s targets nonexistent flow %s.%s", in.Ref, f.Name, toRef.Class, toFlowName)
			}
			var bytes int64
			if in.Class.FlowBytes != nil {
				bytes = in.Class.FlowBytes(a, f.Name)
			}
			if to.Class.InBytes != nil {
				bytes = to.Class.InBytes(toRef.Args, toFlowName)
			}
			dels = append(dels, Delivery{From: in, FromFlow: fi, To: to, ToFlow: toFlow, Bytes: bytes})
		}
	}
	return dels, writes, nil
}

// Deliver satisfies one task-sourced input of an instance with a payload.
// It returns true if the instance became ready.
func (t *Tracker) Deliver(to *Instance, flowIdx int, payload any) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.deliverLocked(to, flowIdx, payload)
}

// DeliverAll performs every delivery of one completion under a single
// lock acquisition, taking each payload from outs[d.FromFlow] (the
// completed task's Ctx.Out). It returns the instances that became ready,
// in delivery order. One lock per completion instead of one per edge
// matters on wide fan-outs, where a single task releases thousands of
// successors.
func (t *Tracker) DeliverAll(dels []Delivery, outs []any) ([]*Instance, error) {
	if len(dels) == 0 {
		return nil, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var ready []*Instance
	for _, d := range dels {
		ok, err := t.deliverLocked(d.To, d.ToFlow, outs[d.FromFlow])
		if err != nil {
			return ready, err
		}
		if ok {
			ready = append(ready, d.To)
		}
	}
	return ready, nil
}

func (t *Tracker) deliverLocked(to *Instance, flowIdx int, payload any) (bool, error) {
	if to.State == StateDone || to.State == StateRunning {
		return false, fmt.Errorf("ptg: Deliver to %v in state %v", to.Ref, to.State)
	}
	if flowIdx < 0 || flowIdx >= len(to.In) {
		return false, fmt.Errorf("ptg: Deliver to %v flow %d out of range", to.Ref, flowIdx)
	}
	if !to.fromTask[flowIdx] {
		return false, fmt.Errorf("ptg: Deliver to %v flow %s which has no task source",
			to.Ref, to.Class.Flows[flowIdx].Name)
	}
	if to.delivered[flowIdx] {
		return false, fmt.Errorf("ptg: duplicate delivery to %v flow %s",
			to.Ref, to.Class.Flows[flowIdx].Name)
	}
	to.delivered[flowIdx] = true
	to.In[flowIdx] = payload
	to.pending--
	if to.pending == 0 {
		to.State = StateReady
		return true, nil
	}
	return false, nil
}

// CompleteDeliver is Complete followed by DeliverAll, fused into a
// single lock acquisition and no intermediate Delivery slice: the hot
// path of the shared-memory runtime, where every completion would
// otherwise pay two lock round-trips plus an allocation. Each output
// dependency's payload is taken from outs (the task's Ctx.Out, indexed
// by producer flow). Newly ready successors are appended to ready — a
// caller-owned scratch buffer, so steady state allocates nothing — and
// the extended slice is returned. Terminal writes are not reported:
// shared-memory bodies perform their own Global Array updates.
func (t *Tracker) CompleteDeliver(in *Instance, outs []any, ready []*Instance) ([]*Instance, error) {
	if in.State != StateRunning && in.State != StateReady {
		return ready, fmt.Errorf("ptg: Complete(%v) in state %v", in.Ref, in.State)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	in.State = StateDone
	t.remaining.Add(-1)
	t.completed++
	a := in.Ref.Args
	for fi, f := range in.Class.Flows {
		for _, out := range f.Outs {
			if out.Guard != nil && !out.Guard(a) {
				continue
			}
			if out.Data != nil {
				continue
			}
			toRef, toFlowName := out.Consumer(a)
			to := t.instances[toRef]
			if to == nil {
				return ready, fmt.Errorf("ptg: %v flow %s targets nonexistent task %v", in.Ref, f.Name, toRef)
			}
			toFlow, ok := to.Class.FlowIndex(toFlowName)
			if !ok {
				return ready, fmt.Errorf("ptg: %v flow %s targets nonexistent flow %s.%s", in.Ref, f.Name, toRef.Class, toFlowName)
			}
			became, err := t.deliverLocked(to, toFlow, outs[fi])
			if err != nil {
				return ready, err
			}
			if became {
				ready = append(ready, to)
			}
		}
	}
	return ready, nil
}

// DeliveredFlow reports whether an instance's task-sourced input on the
// given flow has already been satisfied (false also for flows with no
// task source). Distributed executors use it to drop duplicate
// activations — an at-least-once wire delivers the same payload twice
// after a retransmission or a post-takeover replay — before they reach
// Deliver, which treats duplicates as a protocol error.
func (t *Tracker) DeliveredFlow(in *Instance, flowIdx int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if flowIdx < 0 || flowIdx >= len(in.delivered) {
		return false
	}
	return !in.fromTask[flowIdx] || in.delivered[flowIdx]
}

// TaskSourced reports whether an instance's input on the given flow
// comes from another task (as opposed to terminal data, a fresh buffer,
// or an inactive flow). A migrating executor ships exactly the
// task-sourced delivered inputs: everything else every rank
// reconstructs from the graph definition.
func (t *Tracker) TaskSourced(in *Instance, flowIdx int) bool {
	if flowIdx < 0 || flowIdx >= len(in.fromTask) {
		return false
	}
	return in.fromTask[flowIdx]
}

// Reset returns a running instance to the ready state, keeping its
// delivered inputs. It is the re-claim path of distributed migration: a
// victim marks a task Running when it hands it to a remote thief, and if
// the thief dies before completing it the victim resets and re-executes
// the task itself. Resetting an instance in any other state is an error.
func (t *Tracker) Reset(in *Instance) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if in.State != StateRunning {
		return fmt.Errorf("ptg: Reset(%v) in state %v", in.Ref, in.State)
	}
	in.State = StateReady
	return nil
}

// StateOf returns an instance's lifecycle state under the tracker's
// lock. Concurrent executors that must branch on state outside the
// dequeue path (a distributed engine scanning for re-executable work
// during takeover, say) read it here rather than racing the plain
// State field against a locked transition.
func (t *Tracker) StateOf(in *Instance) InstState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return in.State
}

// CheckQuiescent verifies the terminal invariant: every instance done.
// It returns a descriptive error naming a stuck instance otherwise.
func (t *Tracker) CheckQuiescent() error {
	if t.remaining.Load() == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, in := range t.order {
		if in.State != StateDone {
			return fmt.Errorf("ptg: %d task(s) incomplete; first: %v (pending inputs: %d)",
				t.remaining.Load(), in.Ref, in.pending)
		}
	}
	return fmt.Errorf("ptg: remaining=%d but all instances done (accounting bug)", t.remaining.Load())
}
