// Package ptg implements the Parameterized Task Graph abstraction at the
// heart of PaRSEC (§II-B): task classes parameterized by integer indices,
// with symbolic, guarded dataflow edges between them. A PTG is a compact
// representation of the execution DAG — the DAG itself is never
// materialized as such; instead, completing a task evaluates its output
// dependencies to discover which successors receive data.
//
// A task class corresponds to one block of the .jdf-like notation in the
// paper's Fig 1:
//
//	GEMM(L1, L2)
//	  L1 = 0..size_L1-1, L2 = 0..size_L2-1    -> Domain
//	  : descRR(L1)                             -> Affinity
//	  READ A <- A input_A(A_reader, L2, L1)    -> Flow{Read, Ins}
//	  RW   C <- (L2==0) ? C DFILL(L1) ...      -> Flow{RW, guarded Ins}
//	       -> (L2 < last) ? C GEMM(L1, L2+1)   -> guarded Outs
//	  ; priority                               -> Priority
//	  BODY { dgemm(...) }                      -> Body / Cost
//
// The same graph definition drives two executors: the shared-memory
// goroutine runtime (internal/runtime) executes Body with real data, and
// the distributed discrete-event executor (internal/simexec) charges Cost
// and FlowBytes against the simulated machine.
package ptg

import (
	"fmt"
	"sort"

	"parsec/internal/team"
	"parsec/internal/tensor/pool"
)

// MaxParams is the maximum number of task-class parameters.
const MaxParams = 3

// Args holds the parameter values of one task instance. Unused trailing
// entries are zero.
type Args [MaxParams]int

// A1 builds a one-parameter argument vector.
func A1(a int) Args { return Args{a, 0, 0} }

// A2 builds a two-parameter argument vector.
func A2(a, b int) Args { return Args{a, b, 0} }

// A3 builds a three-parameter argument vector.
func A3(a, b, c int) Args { return Args{a, b, c} }

// Mode is the access mode of a flow, as written in the PTG source.
type Mode int

const (
	Read  Mode = iota // READ: input only, forwarded unchanged
	RW                // RW: input consumed, modified, forwarded
	Write             // WRITE: no meaningful input data; produces output
)

// String renders the flow mode as its JDF keyword.
func (m Mode) String() string {
	switch m {
	case Read:
		return "READ"
	case RW:
		return "RW"
	default:
		return "WRITE"
	}
}

// TaskRef names one task instance: a class plus parameter values.
type TaskRef struct {
	Class string
	Args  Args
}

// String renders the canonical task label, e.g. "GEMM(1,2,3)" — the
// format traces and DAG replays key on.
func (r TaskRef) String() string {
	return fmt.Sprintf("%s(%d,%d,%d)", r.Class, r.Args[0], r.Args[1], r.Args[2])
}

// DataRef names a terminal datum outside the task graph (for this
// application: a Global Array block). Executors interpret it.
type DataRef struct {
	ID    string // unique identity, e.g. "i0(1,2,3,4)"
	Node  int    // owner node
	Bytes int64
}

// InDep is one guarded input alternative of a flow ("<-" line). Exactly
// one of Producer, Data, and New is set. For a given task instance the
// first alternative whose guard holds supplies the flow; if none holds,
// the flow is inactive for that instance.
type InDep struct {
	Guard    func(a Args) bool // nil means always
	Producer func(a Args) (TaskRef, string)
	Data     func(a Args) DataRef
	New      func(a Args) int64 // allocate a fresh buffer of this many bytes
}

// OutDep is one guarded output dependency of a flow ("->" line). Exactly
// one of Consumer and Data is set. All alternatives whose guards hold
// fire (a datum can fan out to several consumers).
type OutDep struct {
	Guard    func(a Args) bool
	Consumer func(a Args) (TaskRef, string)
	Data     func(a Args) DataRef
}

// Flow is one named dataflow of a task class.
type Flow struct {
	Name string
	Mode Mode
	Ins  []InDep
	Outs []OutDep
}

// Cost describes the simulated execution cost of a task instance.
type Cost struct {
	Flops    int64 // compute-bound work
	MemBytes int64 // memory-bound traffic through the node's shared bandwidth
	// GemmBytes is operand-footprint traffic of a GEMM kernel; the
	// executor scales it by the machine's GemmMemTraffic factor before
	// charging it (blocked DGEMM re-streams panels from DRAM).
	GemmBytes int64
	Warm      bool // traffic benefits from the cache-locality discount
}

// Ctx is the execution context handed to a task body by the real runtime.
type Ctx struct {
	Args Args
	Node int
	// Seq is the executing instance's deterministic creation ordinal
	// (Instance.Seq): schedule-independent, so bodies can use it to tag
	// order-sensitive side effects such as ordered accumulations.
	Seq int
	// In holds the payload received on each flow (indexed like
	// TaskClass.Flows); nil for inactive flows and for New buffers of the
	// sim-only path.
	In []any
	// Out holds the payload forwarded to each flow's consumers. It is
	// prefilled with In; bodies overwrite entries for flows whose data
	// they produce or replace.
	Out []any

	// Pool is the executing worker's scratch shard for pooled tile and
	// panel buffers; nil when the executor provides none (bodies fall
	// back to the shared pool — tensor's *In helpers accept nil).
	Pool *pool.Local
	// Par is the intra-task parallelism handle of the executing runtime:
	// kernels that can split one task across idle workers (tensor.GemmP)
	// span through it. nil means run serially.
	Par team.Parallelism

	// err is the first failure recorded by Fail; the runtime surfaces it
	// as a task error after the body returns.
	err error
}

// InByName returns the input payload of the named flow.
func (c *Ctx) InByName(class *TaskClass, name string) any {
	return c.In[class.MustFlowIndex(name)]
}

// Fail records a task-body failure without panicking. Bodies call it
// when a fallible operation (e.g. a Global Arrays accumulate) reports
// an error; the runtime fails the task — and the run — cleanly after
// the body returns. Only the first failure is kept.
func (c *Ctx) Fail(err error) {
	if c.err == nil && err != nil {
		c.err = err
	}
}

// Err returns the first failure recorded by Fail, or nil.
func (c *Ctx) Err() error { return c.err }

// TaskClass is one parameterized task class of a PTG.
type TaskClass struct {
	Name string
	// Domain enumerates every valid parameter combination. The runtime
	// uses it to size internal tables; it corresponds to the parameter
	// range lines of the PTG source (which may consult inspection-phase
	// metadata, as in Fig 1's mtdata->size_L1).
	Domain func(emit func(Args))
	// Affinity maps an instance to the node that executes it (the
	// ": descRR(L1)" line). nil means node 0.
	Affinity func(a Args) int
	// Priority orders ready tasks (higher runs first); the "; expr" line.
	// nil means priority 0.
	Priority func(a Args) int64
	Flows    []*Flow
	// Body executes the task with real data (shared-memory runtime).
	Body func(ctx *Ctx)
	// Cost yields the simulated execution cost (distributed simulator).
	Cost func(a Args) Cost
	// FlowBytes yields the payload size of the named flow for simulated
	// transfers. nil means 0 bytes (metadata-only flow).
	FlowBytes func(a Args, flow string) int64
	// InBytes, when set, overrides the transfer size of payloads
	// *received* on the named flow — for consumers that take only a slice
	// of the producer's datum, like the per-node WRITE_C instances of
	// Fig 8 that each receive only the segment relevant to their node.
	InBytes func(a Args, flow string) int64

	flowIdx map[string]int
}

// AddFlow appends a flow to the class and returns it for chaining.
func (tc *TaskClass) AddFlow(name string, mode Mode) *Flow {
	if _, dup := tc.flowIdx[name]; dup {
		panic(fmt.Sprintf("ptg: duplicate flow %s.%s", tc.Name, name))
	}
	f := &Flow{Name: name, Mode: mode}
	tc.flowIdx[name] = len(tc.Flows)
	tc.Flows = append(tc.Flows, f)
	return f
}

// FlowIndex returns the index of the named flow and whether it exists.
func (tc *TaskClass) FlowIndex(name string) (int, bool) {
	i, ok := tc.flowIdx[name]
	return i, ok
}

// MustFlowIndex returns the index of the named flow, panicking if absent.
func (tc *TaskClass) MustFlowIndex(name string) int {
	i, ok := tc.flowIdx[name]
	if !ok {
		panic(fmt.Sprintf("ptg: no flow %s.%s", tc.Name, name))
	}
	return i
}

// In adds a guarded input alternative supplied by another task's flow.
func (f *Flow) In(guard func(a Args) bool, producer func(a Args) (TaskRef, string)) *Flow {
	f.Ins = append(f.Ins, InDep{Guard: guard, Producer: producer})
	return f
}

// InData adds a guarded input alternative supplied by a terminal datum.
func (f *Flow) InData(guard func(a Args) bool, data func(a Args) DataRef) *Flow {
	f.Ins = append(f.Ins, InDep{Guard: guard, Data: data})
	return f
}

// InNew adds a guarded input alternative that allocates a fresh buffer.
func (f *Flow) InNew(guard func(a Args) bool, size func(a Args) int64) *Flow {
	f.Ins = append(f.Ins, InDep{Guard: guard, New: size})
	return f
}

// Out adds a guarded output dependency to another task's flow.
func (f *Flow) Out(guard func(a Args) bool, consumer func(a Args) (TaskRef, string)) *Flow {
	f.Outs = append(f.Outs, OutDep{Guard: guard, Consumer: consumer})
	return f
}

// OutData adds a guarded terminal output dependency.
func (f *Flow) OutData(guard func(a Args) bool, data func(a Args) DataRef) *Flow {
	f.Outs = append(f.Outs, OutDep{Guard: guard, Data: data})
	return f
}

// Graph is a Parameterized Task Graph: a set of task classes.
type Graph struct {
	Name    string
	classes map[string]*TaskClass
	order   []*TaskClass
}

// NewGraph returns an empty graph.
func NewGraph(name string) *Graph {
	return &Graph{Name: name, classes: make(map[string]*TaskClass)}
}

// Class adds a new task class with the given name.
func (g *Graph) Class(name string) *TaskClass {
	if _, dup := g.classes[name]; dup {
		panic(fmt.Sprintf("ptg: duplicate class %s", name))
	}
	tc := &TaskClass{Name: name, flowIdx: make(map[string]int)}
	g.classes[name] = tc
	g.order = append(g.order, tc)
	return tc
}

// ClassByName returns the named class, or nil.
func (g *Graph) ClassByName(name string) *TaskClass { return g.classes[name] }

// Classes returns the task classes in definition order.
func (g *Graph) Classes() []*TaskClass { return g.order }

// Validate checks structural well-formedness: domains exist, flows have
// at most one unguarded input alternative (which must be last), and every
// referenced class and flow name resolves. It does not instantiate tasks.
func (g *Graph) Validate() error {
	for _, tc := range g.order {
		if tc.Domain == nil {
			return fmt.Errorf("ptg: class %s has no Domain", tc.Name)
		}
		for _, f := range tc.Flows {
			for i, in := range f.Ins {
				n := 0
				if in.Producer != nil {
					n++
				}
				if in.Data != nil {
					n++
				}
				if in.New != nil {
					n++
				}
				if n != 1 {
					return fmt.Errorf("ptg: %s.%s input %d must have exactly one source", tc.Name, f.Name, i)
				}
				if in.Guard == nil && i != len(f.Ins)-1 {
					return fmt.Errorf("ptg: %s.%s input %d is unguarded but not last", tc.Name, f.Name, i)
				}
			}
			for i, out := range f.Outs {
				n := 0
				if out.Consumer != nil {
					n++
				}
				if out.Data != nil {
					n++
				}
				if n != 1 {
					return fmt.Errorf("ptg: %s.%s output %d must have exactly one sink", tc.Name, f.Name, i)
				}
			}
		}
	}
	return nil
}

// Enumerate lists every task instance of every class, in deterministic
// order (class definition order, then domain emission order).
func (g *Graph) Enumerate() []TaskRef {
	var refs []TaskRef
	for _, tc := range g.order {
		tc.Domain(func(a Args) {
			refs = append(refs, TaskRef{Class: tc.Name, Args: a})
		})
	}
	return refs
}

// CountTasks returns the number of instances per class, keyed by class
// name, plus the total.
func (g *Graph) CountTasks() (map[string]int, int) {
	counts := make(map[string]int, len(g.order))
	total := 0
	for _, tc := range g.order {
		n := 0
		tc.Domain(func(Args) { n++ })
		counts[tc.Name] = n
		total += n
	}
	return counts, total
}

// ClassNames returns the class names in definition order.
func (g *Graph) ClassNames() []string {
	names := make([]string, len(g.order))
	for i, tc := range g.order {
		names[i] = tc.Name
	}
	return names
}

// SortRefs orders task references deterministically: by class definition
// order, then by args lexicographically.
func (g *Graph) SortRefs(refs []TaskRef) {
	rank := make(map[string]int, len(g.order))
	for i, tc := range g.order {
		rank[tc.Name] = i
	}
	sort.Slice(refs, func(i, j int) bool {
		ri, rj := refs[i], refs[j]
		if rank[ri.Class] != rank[rj.Class] {
			return rank[ri.Class] < rank[rj.Class]
		}
		for k := 0; k < MaxParams; k++ {
			if ri.Args[k] != rj.Args[k] {
				return ri.Args[k] < rj.Args[k]
			}
		}
		return false
	})
}
