package ptg

import (
	"fmt"
	"testing"
)

// chainGraph builds the paper's Fig 1 PTG: DFILL(L1) starts a chain,
// GEMM(L1, L2) tasks pass C serially along the chain, the last GEMM
// sends C to SORT(L1). Readers supply A and B from terminal data.
func chainGraph(numChains int, chainLen func(int) int) *Graph {
	g := NewGraph("fig1-chain")

	dfill := g.Class("DFILL")
	dfill.Domain = func(emit func(Args)) {
		for l1 := 0; l1 < numChains; l1++ {
			emit(A1(l1))
		}
	}
	dfill.Priority = func(a Args) int64 { return int64(numChains - a[0]) }
	dfill.AddFlow("C", Write).
		InNew(nil, func(a Args) int64 { return 1024 }).
		Out(nil, func(a Args) (TaskRef, string) {
			return TaskRef{"GEMM", A2(a[0], 0)}, "C"
		})

	read := func(name string) *TaskClass {
		rc := g.Class(name)
		rc.Domain = func(emit func(Args)) {
			for l1 := 0; l1 < numChains; l1++ {
				for l2 := 0; l2 < chainLen(l1); l2++ {
					emit(A2(l1, l2))
				}
			}
		}
		rc.Priority = func(a Args) int64 { return int64(numChains-a[0]) + 5 }
		rc.AddFlow("D", Write).
			InData(nil, func(a Args) DataRef {
				return DataRef{ID: fmt.Sprintf("%s(%d,%d)", name, a[0], a[1]), Bytes: 512}
			}).
			Out(nil, func(a Args) (TaskRef, string) {
				return TaskRef{"GEMM", a}, name[len(name)-1:]
			})
		return rc
	}
	read("READA")
	read("READB")

	gemm := g.Class("GEMM")
	gemm.Domain = func(emit func(Args)) {
		for l1 := 0; l1 < numChains; l1++ {
			for l2 := 0; l2 < chainLen(l1); l2++ {
				emit(A2(l1, l2))
			}
		}
	}
	gemm.Priority = func(a Args) int64 { return int64(numChains-a[0]) + 1 }
	gemm.AddFlow("A", Read).In(nil, func(a Args) (TaskRef, string) { return TaskRef{"READA", a}, "D" })
	gemm.AddFlow("B", Read).In(nil, func(a Args) (TaskRef, string) { return TaskRef{"READB", a}, "D" })
	gemm.AddFlow("C", RW).
		In(func(a Args) bool { return a[1] == 0 },
			func(a Args) (TaskRef, string) { return TaskRef{"DFILL", A1(a[0])}, "C" }).
		In(func(a Args) bool { return a[1] != 0 },
			func(a Args) (TaskRef, string) { return TaskRef{"GEMM", A2(a[0], a[1]-1)}, "C" }).
		Out(func(a Args) bool { return a[1] < chainLen(a[0])-1 },
			func(a Args) (TaskRef, string) { return TaskRef{"GEMM", A2(a[0], a[1]+1)}, "C" }).
		Out(func(a Args) bool { return a[1] == chainLen(a[0])-1 },
			func(a Args) (TaskRef, string) { return TaskRef{"SORT", A1(a[0])}, "C" })

	sort := g.Class("SORT")
	sort.Domain = func(emit func(Args)) {
		for l1 := 0; l1 < numChains; l1++ {
			emit(A1(l1))
		}
	}
	sort.AddFlow("C", RW).
		In(nil, func(a Args) (TaskRef, string) {
			return TaskRef{"GEMM", A2(a[0], chainLen(a[0])-1)}, "C"
		}).
		OutData(nil, func(a Args) DataRef {
			return DataRef{ID: fmt.Sprintf("out(%d)", a[0]), Bytes: 1024}
		})
	return g
}

func TestValidateOK(t *testing.T) {
	g := chainGraph(2, func(int) int { return 3 })
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsMissingDomain(t *testing.T) {
	g := NewGraph("bad")
	g.Class("X")
	if err := g.Validate(); err == nil {
		t.Error("missing Domain accepted")
	}
}

func TestValidateRejectsUnguardedNonLastInput(t *testing.T) {
	g := NewGraph("bad")
	tc := g.Class("X")
	tc.Domain = func(emit func(Args)) { emit(A1(0)) }
	f := tc.AddFlow("D", Read)
	f.InData(nil, func(a Args) DataRef { return DataRef{ID: "d"} })
	f.InData(func(a Args) bool { return true }, func(a Args) DataRef { return DataRef{ID: "e"} })
	if err := g.Validate(); err == nil {
		t.Error("unguarded non-last input accepted")
	}
}

func TestValidateRejectsAmbiguousSource(t *testing.T) {
	g := NewGraph("bad")
	tc := g.Class("X")
	tc.Domain = func(emit func(Args)) { emit(A1(0)) }
	tc.Flows = append(tc.Flows, &Flow{Name: "D", Ins: []InDep{{
		Data: func(a Args) DataRef { return DataRef{} },
		New:  func(a Args) int64 { return 1 },
	}}})
	if err := g.Validate(); err == nil {
		t.Error("two-source input accepted")
	}
}

func TestDuplicateClassAndFlowPanic(t *testing.T) {
	g := NewGraph("dup")
	tc := g.Class("X")
	tc.AddFlow("D", Read)
	for _, fn := range []func(){
		func() { g.Class("X") },
		func() { tc.AddFlow("D", Read) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCountTasksAndEnumerate(t *testing.T) {
	g := chainGraph(3, func(l1 int) int { return l1 + 1 }) // lens 1,2,3
	counts, total := g.CountTasks()
	// DFILL 3, READA 6, READB 6, GEMM 6, SORT 3 = 24.
	want := map[string]int{"DFILL": 3, "READA": 6, "READB": 6, "GEMM": 6, "SORT": 3}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("count[%s] = %d, want %d", k, counts[k], v)
		}
	}
	if total != 24 {
		t.Errorf("total = %d, want 24", total)
	}
	if got := len(g.Enumerate()); got != 24 {
		t.Errorf("Enumerate len = %d", got)
	}
}

func TestTrackerInitialReady(t *testing.T) {
	g := chainGraph(2, func(int) int { return 2 })
	tr, err := NewTracker(g)
	if err != nil {
		t.Fatal(err)
	}
	ready := tr.InitialReady()
	// DFILLs (New buffer) and all readers (terminal data) are ready;
	// GEMMs and SORTs wait.
	wantReady := 2 + 4 + 4
	if len(ready) != wantReady {
		t.Fatalf("initial ready = %d, want %d", len(ready), wantReady)
	}
	for _, in := range ready {
		if in.Ref.Class == "GEMM" || in.Ref.Class == "SORT" {
			t.Errorf("%v ready at start", in.Ref)
		}
	}
	if tr.Remaining() != 16 { // 2 DFILL + 4 READA + 4 READB + 4 GEMM + 2 SORT
		t.Errorf("Remaining = %d, want 16", tr.Remaining())
	}
}

// runAll drives the tracker to completion single-threadedly, returning
// the execution order.
func runAll(t *testing.T, tr *Tracker) []TaskRef {
	t.Helper()
	var order []TaskRef
	queue := append([]*Instance(nil), tr.InitialReady()...)
	for len(queue) > 0 {
		in := queue[0]
		queue = queue[1:]
		if err := tr.Start(in); err != nil {
			t.Fatal(err)
		}
		order = append(order, in.Ref)
		dels, _, err := tr.Complete(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range dels {
			ready, err := tr.Deliver(d.To, d.ToFlow, fmt.Sprintf("payload:%v.%d", d.From.Ref, d.FromFlow))
			if err != nil {
				t.Fatal(err)
			}
			if ready {
				queue = append(queue, d.To)
			}
		}
	}
	return order
}

func TestTrackerRunsToCompletion(t *testing.T) {
	g := chainGraph(3, func(l1 int) int { return 2 + l1 })
	tr, err := NewTracker(g)
	if err != nil {
		t.Fatal(err)
	}
	order := runAll(t, tr)
	if !tr.Done() {
		t.Fatalf("not done: %v", tr.CheckQuiescent())
	}
	if err := tr.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	// Chain order: each GEMM(L1,k) must appear after GEMM(L1,k-1) and
	// after its readers; SORT(L1) last of its chain.
	posOf := map[TaskRef]int{}
	for i, r := range order {
		posOf[r] = i
	}
	for l1 := 0; l1 < 3; l1++ {
		for l2 := 0; l2 < 2+l1; l2++ {
			gr := TaskRef{"GEMM", A2(l1, l2)}
			if l2 > 0 && posOf[gr] < posOf[TaskRef{"GEMM", A2(l1, l2-1)}] {
				t.Errorf("GEMM(%d,%d) before its predecessor", l1, l2)
			}
			if posOf[gr] < posOf[TaskRef{"READA", A2(l1, l2)}] {
				t.Errorf("GEMM(%d,%d) before READA", l1, l2)
			}
		}
		if posOf[TaskRef{"SORT", A1(l1)}] < posOf[TaskRef{"GEMM", A2(l1, 1+l1)}] {
			t.Errorf("SORT(%d) before last GEMM", l1)
		}
	}
}

func TestTrackerTerminalWrites(t *testing.T) {
	g := chainGraph(1, func(int) int { return 1 })
	tr, err := NewTracker(g)
	if err != nil {
		t.Fatal(err)
	}
	var writes []TerminalWrite
	queue := append([]*Instance(nil), tr.InitialReady()...)
	for len(queue) > 0 {
		in := queue[0]
		queue = queue[1:]
		tr.Start(in)
		dels, ws, err := tr.Complete(in)
		if err != nil {
			t.Fatal(err)
		}
		writes = append(writes, ws...)
		for _, d := range dels {
			if ready, err := tr.Deliver(d.To, d.ToFlow, 1); err != nil {
				t.Fatal(err)
			} else if ready {
				queue = append(queue, d.To)
			}
		}
	}
	if len(writes) != 1 || writes[0].Data.ID != "out(0)" {
		t.Errorf("terminal writes = %+v", writes)
	}
}

func TestDeliverErrors(t *testing.T) {
	g := chainGraph(1, func(int) int { return 2 })
	tr, err := NewTracker(g)
	if err != nil {
		t.Fatal(err)
	}
	gemm0 := tr.Instance(TaskRef{"GEMM", A2(0, 0)})
	// Deliver to a flow with a data source (A comes from READA task, so
	// flow A is task-sourced; but DFILL's C flow is New-sourced).
	dfill := tr.Instance(TaskRef{"DFILL", A1(0)})
	if _, err := tr.Deliver(dfill, 0, nil); err == nil {
		t.Error("Deliver to New-sourced flow accepted")
	}
	// Duplicate delivery.
	if _, err := tr.Deliver(gemm0, 0, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Deliver(gemm0, 0, "x"); err == nil {
		t.Error("duplicate delivery accepted")
	}
	// Out-of-range flow.
	if _, err := tr.Deliver(gemm0, 99, "x"); err == nil {
		t.Error("out-of-range flow accepted")
	}
}

func TestStartCompleteStateErrors(t *testing.T) {
	g := chainGraph(1, func(int) int { return 1 })
	tr, _ := NewTracker(g)
	gemm := tr.Instance(TaskRef{"GEMM", A2(0, 0)})
	if err := tr.Start(gemm); err == nil {
		t.Error("Start of waiting task accepted")
	}
	if _, _, err := tr.Complete(gemm); err == nil {
		t.Error("Complete of waiting task accepted")
	}
	dfill := tr.Instance(TaskRef{"DFILL", A1(0)})
	if err := tr.Start(dfill); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(dfill); err == nil {
		t.Error("double Start accepted")
	}
}

func TestInactiveFlow(t *testing.T) {
	// A class with a flow whose only input guard never fires: the flow is
	// inactive and the task is ready immediately.
	g := NewGraph("inactive")
	tc := g.Class("X")
	tc.Domain = func(emit func(Args)) { emit(A1(0)) }
	tc.AddFlow("D", Read).In(func(a Args) bool { return false },
		func(a Args) (TaskRef, string) { return TaskRef{"X", A1(99)}, "D" })
	tr, err := NewTracker(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.InitialReady()) != 1 {
		t.Error("task with inactive flow not initially ready")
	}
	x := tr.Instance(TaskRef{"X", A1(0)})
	if x.In[0] != nil {
		t.Error("inactive flow has payload")
	}
}

func TestCompleteTargetsMissingTask(t *testing.T) {
	g := NewGraph("dangling")
	tc := g.Class("X")
	tc.Domain = func(emit func(Args)) { emit(A1(0)) }
	tc.AddFlow("D", Write).
		InNew(nil, func(a Args) int64 { return 8 }).
		Out(nil, func(a Args) (TaskRef, string) { return TaskRef{"Y", A1(0)}, "D" })
	tr, err := NewTracker(g)
	if err != nil {
		t.Fatal(err)
	}
	x := tr.Instance(TaskRef{"X", A1(0)})
	tr.Start(x)
	if _, _, err := tr.Complete(x); err == nil {
		t.Error("dangling consumer accepted")
	}
}

func TestPriorityAndAffinityRecorded(t *testing.T) {
	g := chainGraph(4, func(int) int { return 1 })
	gemm := g.ClassByName("GEMM")
	gemm.Affinity = func(a Args) int { return a[0] % 2 }
	tr, err := NewTracker(g)
	if err != nil {
		t.Fatal(err)
	}
	in := tr.Instance(TaskRef{"GEMM", A2(3, 0)})
	if in.Node != 1 {
		t.Errorf("Node = %d, want 1", in.Node)
	}
	if in.Priority != int64(4-3)+1 {
		t.Errorf("Priority = %d", in.Priority)
	}
}

func TestFlowBytesInDeliveries(t *testing.T) {
	g := chainGraph(1, func(int) int { return 1 })
	g.ClassByName("DFILL").FlowBytes = func(a Args, flow string) int64 { return 4096 }
	tr, err := NewTracker(g)
	if err != nil {
		t.Fatal(err)
	}
	dfill := tr.Instance(TaskRef{"DFILL", A1(0)})
	tr.Start(dfill)
	dels, _, err := tr.Complete(dfill)
	if err != nil {
		t.Fatal(err)
	}
	if len(dels) != 1 || dels[0].Bytes != 4096 {
		t.Errorf("deliveries = %+v", dels)
	}
}

func TestSortRefsDeterministic(t *testing.T) {
	g := chainGraph(2, func(int) int { return 2 })
	refs := []TaskRef{
		{"SORT", A1(1)}, {"GEMM", A2(1, 0)}, {"DFILL", A1(0)},
		{"GEMM", A2(0, 1)}, {"SORT", A1(0)},
	}
	g.SortRefs(refs)
	want := []TaskRef{
		{"DFILL", A1(0)}, {"GEMM", A2(0, 1)}, {"GEMM", A2(1, 0)},
		{"SORT", A1(0)}, {"SORT", A1(1)},
	}
	for i := range want {
		if refs[i] != want[i] {
			t.Fatalf("SortRefs[%d] = %v, want %v", i, refs[i], want[i])
		}
	}
}

func TestArgsHelpers(t *testing.T) {
	if A1(5) != (Args{5, 0, 0}) || A2(1, 2) != (Args{1, 2, 0}) || A3(1, 2, 3) != (Args{1, 2, 3}) {
		t.Error("args constructors")
	}
	r := TaskRef{"GEMM", A2(1, 2)}
	if r.String() != "GEMM(1,2,0)" {
		t.Errorf("String = %q", r.String())
	}
	if Read.String() != "READ" || RW.String() != "RW" || Write.String() != "WRITE" {
		t.Error("mode strings")
	}
}
