package metrics

import "fmt"

// FormatBytes renders a byte quantity with a unit chosen for legibility
// (B, kB, MB, GB). It is the one byte formatter in the repo: the
// profile report, the simulator's transfer diagnostics, and every other
// byte rendering share it so quantities read identically across
// surfaces.
func FormatBytes(b int64) string {
	switch {
	case b >= 1e9:
		return fmt.Sprintf("%.2fGB", float64(b)/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.2fMB", float64(b)/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.1fkB", float64(b)/1e3)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
