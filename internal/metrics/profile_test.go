package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func sampleProfile() *ProfileReport {
	return &ProfileReport{
		Title: "v4 sim water 2n x 4c",
		Span:  2_500_000_000,
		Tasks: 1234,
		Hist: []HistRow{
			{Class: "GEMM", Count: 800, P50: 1_200_000, P95: 3_400_000, P99: 4_100_000, Max: 5_000_000, Total: 1_100_000_000},
			{Class: "SORT", Count: 200, P50: 400_000, P95: 900_000, P99: 950_000, Max: 1_000_000, Total: 90_000_000},
			{Class: "NXTVAL", Count: 234, P50: 800, P95: 2_000, P99: 2_300, Max: 2_500, Total: 250_000},
		},
		Idle: []IdleRow{
			{Worker: "n1/t3", Tasks: 150, Busy: 1_900_000_000, Idle: 600_000_000, StartupIdle: 500_000_000, LongestBubble: 500_000_000, BubbleStart: 0},
			{Worker: "n0/t1", Tasks: 160, Busy: 2_100_000_000, Idle: 400_000_000, StartupIdle: 0, LongestBubble: 300_000_000, BubbleStart: 1_200_000_000},
		},
		IdleWorkers:  8,
		TotalIdle:    2_400_000_000,
		MeanIdleFrac: 0.12,
		MeanStartup:  150_000_000,
		MaxBubble:    500_000_000,
		MaxBubbleAt:  0,
		MaxBubbleBy:  "n1/t3",
		RampClass:    "GEMM",
		RampMean:     70_000_000,
		RampMax:      500_000_000,
		RampMeanFrac: 0.028,
		RampMaxFrac:  0.2,
		Comm: []CommRow{
			{Label: "GET", Ops: 4000, Bytes: 3_200_000_000},
			{Label: "ACC", Ops: 1000, Bytes: 700_000_000},
			{Label: "task: WRITE", Ops: 0, Bytes: 650_000_000},
		},
		Path: []PathRow{
			{Class: "GEMM", Tasks: 40, Time: 160_000_000, Frac: 0.8},
			{Class: "WRITE", Tasks: 10, Time: 30_000_000, Frac: 0.15},
			{Class: "READ", Tasks: 10, Time: 10_000_000, Frac: 0.05},
		},
		CritLength: 200_000_000,
		TotalWork:  1_200_000_000,
		MaxSpeedup: 6.0,
	}
}

// TestProfileReportGolden pins the exact rendering of the -profile
// report table. Regenerate with: go test ./internal/metrics -run Golden -update
func TestProfileReportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleProfile().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "profile_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report drifted from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}

func TestProfileReportOmitsEmptySections(t *testing.T) {
	p := &ProfileReport{Title: "empty", Span: 0, Tasks: 0}
	var buf bytes.Buffer
	if err := p.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, section := range []string{"task durations", "idle:", "communication volume", "critical path", "fault recovery", "slowdown vs fault-free"} {
		if bytes.Contains([]byte(out), []byte(section)) {
			t.Errorf("empty report contains %q section:\n%s", section, out)
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	for _, tc := range []struct {
		ns   int64
		want string
	}{{500, "500ns"}, {1_500, "1.5us"}, {2_500_000, "2.50ms"}, {3_000_000_000, "3.000s"}} {
		if got := fmtNS(tc.ns); got != tc.want {
			t.Errorf("fmtNS(%d) = %q, want %q", tc.ns, got, tc.want)
		}
	}
	for _, tc := range []struct {
		b    int64
		want string
	}{{12, "12B"}, {4_000, "4.0kB"}, {2_500_000, "2.50MB"}, {3_200_000_000, "3.20GB"}} {
		if got := fmtBytes(tc.b); got != tc.want {
			t.Errorf("fmtBytes(%d) = %q, want %q", tc.b, got, tc.want)
		}
	}
}

// TestProfileReportRecoverySections pins the fault-recovery and
// slowdown-attribution renderings added with the fault layer.
func TestProfileReportRecoverySections(t *testing.T) {
	p := &ProfileReport{
		Title: "perturbed", Span: 2_600_000_000, Tasks: 10,
		Recovery: &RecoveryStats{
			Retries: 3, Drops: 2, AckDrops: 1, DupSuppressed: 1,
			BackoffTime: 150_000, RetransmitBytes: 2_000_000,
			Redispatches: 4, RedispatchBytes: 800_000,
		},
		SlowdownShown: true,
		BaselineSpan:  2_500_000_000,
		SlowdownLoss:  100_000_000,
		Slowdown: []SlowdownRow{
			{Cause: "straggler n0", Time: 80_000_000, Frac: 0.8},
			{Cause: "xfer backoff", Time: 150_000, Frac: 0.0015},
		},
	}
	var buf bytes.Buffer
	if err := p.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"fault recovery",
		"retries 3 (2 payload drops, 1 lost acks), 1 duplicates suppressed",
		"backoff 150.0us, retransmitted 2.00MB",
		"re-dispatch: 4 tasks migrated off stragglers, 800.0kB of inputs moved",
		"slowdown vs fault-free: +100.00ms (baseline 2.500s, perturbed 2.600s)",
		"straggler n0",
		"80.0%",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// No migrations -> no re-dispatch line; a faster perturbed run
	// renders a negative delta, not garbage.
	p.Recovery.Redispatches = 0
	p.SlowdownLoss = -50_000_000
	p.Slowdown = nil
	buf.Reset()
	if err := p.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if bytes.Contains([]byte(out), []byte("re-dispatch")) {
		t.Errorf("re-dispatch line rendered with zero migrations:\n%s", out)
	}
	if !bytes.Contains([]byte(out), []byte("-50.00ms")) {
		t.Errorf("negative loss not rendered as signed delta:\n%s", out)
	}
}
