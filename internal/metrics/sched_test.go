package metrics

import (
	"strings"
	"testing"
)

func sampleSchedTable() *SchedTable {
	t := &SchedTable{Title: "scheduler sweep"}
	t.Add(SchedRow{
		Config: "shared", Workers: 8, Tasks: 2049, Seconds: 0.002,
		Parks: 12, Wakes: 30, MaxQueueDepth: 2048,
		PerWorkerTasks: []int64{256, 256, 256, 256, 256, 256, 256, 257},
	})
	t.Add(SchedRow{
		Config: "pinned-steal", Workers: 8, Tasks: 2049, Seconds: 0.003,
		StealAttempts: 40, Steals: 10, Parks: 5, Wakes: 9, MaxQueueDepth: 300,
		PerWorkerTasks: []int64{2049, 0, 0, 0, 0, 0, 0, 0},
	})
	return t
}

func TestSchedRowImbalance(t *testing.T) {
	even := SchedRow{PerWorkerTasks: []int64{10, 10, 10, 10}}
	if got := even.Imbalance(); got != 1.0 {
		t.Errorf("even imbalance = %v, want 1.0", got)
	}
	skew := SchedRow{PerWorkerTasks: []int64{40, 0, 0, 0}}
	if got := skew.Imbalance(); got != 4.0 {
		t.Errorf("skewed imbalance = %v, want 4.0", got)
	}
	if got := (SchedRow{}).Imbalance(); got != 0 {
		t.Errorf("empty imbalance = %v, want 0", got)
	}
	if got := (SchedRow{PerWorkerTasks: []int64{0, 0}}).Imbalance(); got != 0 {
		t.Errorf("zero-task imbalance = %v, want 0", got)
	}
}

func TestSchedRowStealHitRate(t *testing.T) {
	r := SchedRow{StealAttempts: 40, Steals: 10}
	if got := r.StealHitRate(); got != 0.25 {
		t.Errorf("hit rate = %v, want 0.25", got)
	}
	if got := (SchedRow{}).StealHitRate(); got != 0 {
		t.Errorf("no-probe hit rate = %v, want 0", got)
	}
}

func TestSchedTableWriteTable(t *testing.T) {
	var b strings.Builder
	if err := sampleSchedTable().WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"scheduler sweep", "config", "shared", "pinned-steal", "10/40", "2048"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Non-stealing rows show "-" in the steals column.
	if !strings.Contains(out, "-") {
		t.Errorf("no placeholder for non-stealing row:\n%s", out)
	}
}

func TestSchedTableWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sampleSchedTable().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %q", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[0], "config,workers,tasks") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "pinned-steal,8,2049") {
		t.Errorf("row = %q", lines[2])
	}
	if !strings.Contains(lines[2], "8.0000") { // imbalance 2049/(2049/8)
		t.Errorf("imbalance missing from %q", lines[2])
	}
}
