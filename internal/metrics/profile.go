package metrics

import (
	"fmt"
	"io"
	"strings"
)

// HistRow is one task class's duration histogram summary (nanoseconds).
// Plain values mirror internal/obsv.ClassProfile so this package stays a
// formatter with no dependency on the observability layer.
type HistRow struct {
	Class string
	Count int64
	P50   int64
	P95   int64
	P99   int64
	Max   int64
	Total int64
}

// IdleRow is one worker's idle-gap summary (nanoseconds), mirroring
// internal/obsv.WorkerProfile.
type IdleRow struct {
	Worker        string // e.g. "n0/t3"
	Tasks         int
	Busy          int64
	Idle          int64
	StartupIdle   int64
	LongestBubble int64
	BubbleStart   int64
}

// CommRow is one line of the communication-volume section: an operation
// kind or task class with its op count and payload bytes.
type CommRow struct {
	Label string
	Ops   int64
	Bytes int64
}

// RecoveryStats mirrors internal/obsv.Recovery: the counters of what
// the comm threads and scheduler did to absorb injected faults.
type RecoveryStats struct {
	Retries         int
	Drops           int
	AckDrops        int
	DupSuppressed   int
	BackoffTime     int64
	RetransmitBytes int64
	Redispatches    int
	RedispatchBytes int64
}

// SlowdownRow is one injected cause's charge against a perturbed run's
// loss, mirroring internal/obsv.SlowdownCause.
type SlowdownRow struct {
	Cause string
	Time  int64
	Frac  float64
}

// PathRow is one class's share of the critical path, mirroring
// internal/obsv.PathShare.
type PathRow struct {
	Class string
	Tasks int
	Time  int64
	Frac  float64
}

// ProfileReport renders one run's observability profile — per-class
// duration histograms, per-worker idle bubbles, communication volumes,
// and critical-path attribution — as the aligned text sections behind
// ccsim -profile.
type ProfileReport struct {
	Title string
	Span  int64 // trace span (ns)
	Tasks int

	Hist []HistRow

	Idle         []IdleRow // typically the worst few workers
	IdleWorkers  int       // total workers behind the summary line
	TotalIdle    int64
	MeanIdleFrac float64
	MeanStartup  int64
	MaxBubble    int64
	MaxBubbleAt  int64
	MaxBubbleBy  string

	// The time-to-first-RampClass ramp (Fig 11's bubble); omitted when
	// RampClass is empty.
	RampClass    string
	RampMean     int64
	RampMax      int64
	RampMeanFrac float64
	RampMaxFrac  float64

	Comm []CommRow

	Path       []PathRow
	CritLength int64
	TotalWork  int64
	MaxSpeedup float64

	// Recovery renders the fault-recovery section when non-nil.
	Recovery *RecoveryStats

	// Slowdown attribution against a fault-free baseline; rendered only
	// when SlowdownShown is set (the section is meaningful even with an
	// empty cause list, e.g. a perturbed run that lost no time).
	SlowdownShown bool
	BaselineSpan  int64
	SlowdownLoss  int64
	Slowdown      []SlowdownRow
}

// fmtNS renders a nanosecond quantity with a unit chosen for legibility.
func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fus", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// fmtBytes renders a byte quantity with a binary-ish decimal unit (the
// shared FormatBytes, aliased for brevity at the call sites).
func fmtBytes(b int64) string { return FormatBytes(b) }

// fmtSignedNS is fmtNS with an explicit sign for deltas.
func fmtSignedNS(ns int64) string {
	if ns < 0 {
		return "-" + fmtNS(-ns)
	}
	return "+" + fmtNS(ns)
}

func rule(w io.Writer, n int) error {
	_, err := fmt.Fprintln(w, strings.Repeat("-", n))
	return err
}

// WriteTable renders the profile. Sections with no rows are omitted.
func (p *ProfileReport) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %d tasks over %s ==\n",
		p.Title, p.Tasks, fmtNS(p.Span)); err != nil {
		return err
	}

	if len(p.Hist) > 0 {
		header := fmt.Sprintf("%-10s %8s %10s %10s %10s %10s %11s",
			"class", "count", "p50", "p95", "p99", "max", "total")
		if _, err := fmt.Fprintf(w, "\ntask durations\n%s\n", header); err != nil {
			return err
		}
		if err := rule(w, len(header)); err != nil {
			return err
		}
		for _, r := range p.Hist {
			if _, err := fmt.Fprintf(w, "%-10s %8d %10s %10s %10s %10s %11s\n",
				r.Class, r.Count, fmtNS(r.P50), fmtNS(r.P95), fmtNS(r.P99),
				fmtNS(r.Max), fmtNS(r.Total)); err != nil {
				return err
			}
		}
	}

	if p.IdleWorkers > 0 {
		if _, err := fmt.Fprintf(w,
			"\nidle: %d workers, total idle %s (mean frac %.1f%%), mean startup bubble %s\n",
			p.IdleWorkers, fmtNS(p.TotalIdle), 100*p.MeanIdleFrac,
			fmtNS(p.MeanStartup)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "worst bubble: %s on %s at t=%s\n",
			fmtNS(p.MaxBubble), p.MaxBubbleBy, fmtNS(p.MaxBubbleAt)); err != nil {
			return err
		}
		if p.RampClass != "" {
			if _, err := fmt.Fprintf(w,
				"time to first %s per worker: mean %s (%.1f%% of span), max %s (%.1f%%)\n",
				p.RampClass, fmtNS(p.RampMean), 100*p.RampMeanFrac,
				fmtNS(p.RampMax), 100*p.RampMaxFrac); err != nil {
				return err
			}
		}
	}
	if len(p.Idle) > 0 {
		header := fmt.Sprintf("%-10s %7s %10s %10s %10s %12s %12s",
			"worker", "tasks", "busy", "idle", "startup", "worst-bubble", "bubble-at")
		if _, err := fmt.Fprintln(w, header); err != nil {
			return err
		}
		if err := rule(w, len(header)); err != nil {
			return err
		}
		for _, r := range p.Idle {
			if _, err := fmt.Fprintf(w, "%-10s %7d %10s %10s %10s %12s %12s\n",
				r.Worker, r.Tasks, fmtNS(r.Busy), fmtNS(r.Idle),
				fmtNS(r.StartupIdle), fmtNS(r.LongestBubble),
				fmtNS(r.BubbleStart)); err != nil {
				return err
			}
		}
	}

	if len(p.Comm) > 0 {
		header := fmt.Sprintf("%-14s %10s %12s", "comm", "ops", "bytes")
		if _, err := fmt.Fprintf(w, "\ncommunication volume\n%s\n", header); err != nil {
			return err
		}
		if err := rule(w, len(header)); err != nil {
			return err
		}
		for _, r := range p.Comm {
			ops := "-"
			if r.Ops > 0 {
				ops = fmt.Sprint(r.Ops)
			}
			if _, err := fmt.Fprintf(w, "%-14s %10s %12s\n",
				r.Label, ops, fmtBytes(r.Bytes)); err != nil {
				return err
			}
		}
	}

	if len(p.Path) > 0 {
		if _, err := fmt.Fprintf(w,
			"\ncritical path: %s over %d tasks (total work %s, max speedup %.1fx)\n",
			fmtNS(p.CritLength), pathTasks(p.Path), fmtNS(p.TotalWork),
			p.MaxSpeedup); err != nil {
			return err
		}
		header := fmt.Sprintf("%-10s %7s %10s %7s", "class", "tasks", "time", "share")
		if _, err := fmt.Fprintln(w, header); err != nil {
			return err
		}
		if err := rule(w, len(header)); err != nil {
			return err
		}
		for _, r := range p.Path {
			if _, err := fmt.Fprintf(w, "%-10s %7d %10s %6.1f%%\n",
				r.Class, r.Tasks, fmtNS(r.Time), 100*r.Frac); err != nil {
				return err
			}
		}
	}

	if rc := p.Recovery; rc != nil {
		if _, err := fmt.Fprintf(w,
			"\nfault recovery\nretries %d (%d payload drops, %d lost acks), %d duplicates suppressed\n",
			rc.Retries, rc.Drops, rc.AckDrops, rc.DupSuppressed); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "backoff %s, retransmitted %s\n",
			fmtNS(rc.BackoffTime), fmtBytes(rc.RetransmitBytes)); err != nil {
			return err
		}
		if rc.Redispatches > 0 {
			if _, err := fmt.Fprintf(w, "re-dispatch: %d tasks migrated off stragglers, %s of inputs moved\n",
				rc.Redispatches, fmtBytes(rc.RedispatchBytes)); err != nil {
				return err
			}
		}
	}

	if p.SlowdownShown {
		if _, err := fmt.Fprintf(w,
			"\nslowdown vs fault-free: %s (baseline %s, perturbed %s)\n",
			fmtSignedNS(p.SlowdownLoss), fmtNS(p.BaselineSpan), fmtNS(p.Span)); err != nil {
			return err
		}
		if len(p.Slowdown) > 0 {
			header := fmt.Sprintf("%-18s %10s %14s", "cause", "charged", "share-of-loss")
			if _, err := fmt.Fprintln(w, header); err != nil {
				return err
			}
			if err := rule(w, len(header)); err != nil {
				return err
			}
			for _, r := range p.Slowdown {
				share := "-"
				if r.Frac > 0 {
					share = fmt.Sprintf("%.1f%%", 100*r.Frac)
				}
				if _, err := fmt.Fprintf(w, "%-18s %10s %14s\n",
					r.Cause, fmtNS(r.Time), share); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func pathTasks(rows []PathRow) int {
	n := 0
	for _, r := range rows {
		n += r.Tasks
	}
	return n
}
