package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func sampleFig9() *Fig9 {
	f := &Fig9{Title: "test", Cores: []int{1, 3, 7, 15}}
	f.Add(Series{Name: "original", Times: map[int]float64{1: 100, 3: 42.5, 7: 37.2, 15: 40}})
	f.Add(Series{Name: "v1", Times: map[int]float64{1: 55, 3: 30, 7: 22, 15: 21}})
	f.Add(Series{Name: "v5", Times: map[int]float64{1: 54, 3: 28, 7: 17, 15: 12}})
	return f
}

func TestSeriesBest(t *testing.T) {
	s := Series{Name: "x", Times: map[int]float64{1: 10, 3: 5, 7: 5, 15: 8}}
	c, v := s.Best()
	if c != 3 || v != 5 {
		t.Errorf("Best = (%d, %v), want (3, 5) (tie broken by lower cores)", c, v)
	}
	if _, ok := s.At(99); ok {
		t.Error("At(99) reported present")
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleFig9().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"original", "v1", "v5", "1 c/n", "15 c/n", "100.00", "12.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleFig9().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "variant,cores_1,cores_3,cores_7,cores_15" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[3], "v5,54.0000") {
		t.Errorf("v5 row = %q", lines[3])
	}
}

func TestCSVMissingPointsEmpty(t *testing.T) {
	f := &Fig9{Cores: []int{1, 3}}
	f.Add(Series{Name: "x", Times: map[int]float64{1: 2}})
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x,2.0000,\n") {
		t.Errorf("missing point not empty: %q", buf.String())
	}
}

func TestDeriveClaims(t *testing.T) {
	c, err := DeriveClaims(sampleFig9(), 15)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.OriginalSpeedup3; got < 2.35-0.01 || got > 2.35+0.01 {
		t.Errorf("OriginalSpeedup3 = %v", got)
	}
	if c.OriginalBestCores != 7 {
		t.Errorf("OriginalBestCores = %d", c.OriginalBestCores)
	}
	if got := c.OriginalBestSpeedup; got < 2.68 || got > 2.69 {
		t.Errorf("OriginalBestSpeedup = %v", got)
	}
	if c.BestVariant != "v5" {
		t.Errorf("BestVariant = %s", c.BestVariant)
	}
	if got := c.BestOverOriginal; got < 3.09 || got > 3.11 {
		t.Errorf("BestOverOriginal = %v", got)
	}
	if got := c.SpreadAtMax; got < 1.74 || got > 1.76 {
		t.Errorf("SpreadAtMax = %v", got)
	}
	if c.SlowestVariantMax != "v1" {
		t.Errorf("SlowestVariantMax = %s", c.SlowestVariantMax)
	}
	if !strings.Contains(c.String(), "v5") {
		t.Error("claims string missing best variant")
	}
}

func TestDeriveClaimsRequiresOriginal(t *testing.T) {
	f := &Fig9{}
	f.Add(Series{Name: "v1", Times: map[int]float64{1: 1}})
	if _, err := DeriveClaims(f, 1); err == nil {
		t.Error("missing original accepted")
	}
}

func TestGet(t *testing.T) {
	f := sampleFig9()
	if s, ok := f.Get("v1"); !ok || s.Name != "v1" {
		t.Error("Get failed")
	}
	if _, ok := f.Get("nope"); ok {
		t.Error("Get of absent series succeeded")
	}
}
