package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleKernelReport() *KernelReport {
	return &KernelReport{
		Title:     "kernel sweep",
		GoVersion: "go1.24.0",
		Arch:      "amd64",
		CPUs:      1,
		Results: []KernelResult{
			{Kernel: "gemm", Shape: "TN m=121 n=121 k=121", Workload: "benzene",
				Count: 12, Iters: 100, NsPerOp: 125000, BytesPerOp: 351384, MBPerSec: 2811, GFlops: 28.3},
			{Kernel: "sort4", Shape: "11x11x11x11 perm=[2 0 3 1]", Workload: "benzene",
				Count: 4, Iters: 5000, NsPerOp: 17000, BytesPerOp: 234256, MBPerSec: 13780},
		},
	}
}

func TestKernelReportJSONRoundTrip(t *testing.T) {
	r := sampleKernelReport()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back KernelReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 2 || back.Results[0].GFlops != 28.3 || back.Results[1].Kernel != "sort4" {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	// The data-movement kernel reports no flops field at all.
	if strings.Contains(buf.String(), `"gflops": 0`) {
		t.Fatalf("zero gflops should be omitted:\n%s", buf.String())
	}
}

func TestKernelReportTable(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleKernelReport().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"kernel sweep", "TN m=121 n=121 k=121", "28.30", "sort4"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestKernelReportCompare pins the bench-kernels regression guard: a
// >tolFrac ns/op increase on a matching (kernel, shape, workload) row is
// flagged, improvements and new/vanished rows are not, and a different
// environment skips row checks entirely with one explanatory message.
func TestKernelReportCompare(t *testing.T) {
	base := sampleKernelReport()
	cur := sampleKernelReport()
	if msgs := cur.Compare(nil, 0.10); msgs != nil {
		t.Errorf("nil baseline produced %v", msgs)
	}
	if msgs := cur.Compare(base, 0.10); len(msgs) != 0 {
		t.Errorf("identical reports flagged: %v", msgs)
	}

	cur.Results[0].NsPerOp = base.Results[0].NsPerOp * 1.25 // regression
	cur.Results[1].NsPerOp = base.Results[1].NsPerOp * 0.5  // improvement
	cur.Results = append(cur.Results, KernelResult{
		Kernel: "gemm-par", Shape: "TN m=121 n=121 k=121 w=4", Workload: "benzene", NsPerOp: 99999,
	}) // new row: no baseline, ignored
	msgs := cur.Compare(base, 0.10)
	if len(msgs) != 1 {
		t.Fatalf("got %d messages, want 1: %v", len(msgs), msgs)
	}
	if !strings.Contains(msgs[0], "gemm") || !strings.Contains(msgs[0], "+25.0%") {
		t.Errorf("message = %q, want the gemm row with +25.0%%", msgs[0])
	}
	// Within tolerance is clean.
	cur.Results[0].NsPerOp = base.Results[0].NsPerOp * 1.05
	if msgs := cur.Compare(base, 0.10); len(msgs) != 0 {
		t.Errorf("5%% drift flagged at 10%% tolerance: %v", msgs)
	}

	// Environment change: one skip message, no row checks.
	cur.Results[0].NsPerOp = base.Results[0].NsPerOp * 10
	cur.Tier = "portable"
	msgs = cur.Compare(base, 0.10)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "environment changed") {
		t.Errorf("tier change: got %v, want one environment-changed message", msgs)
	}
}

// TestKernelReportTableTier pins that a tiered report names its tier in
// the environment line.
func TestKernelReportTableTier(t *testing.T) {
	r := sampleKernelReport()
	r.Tier = "avx512"
	var buf bytes.Buffer
	if err := r.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "avx512 kernels") {
		t.Errorf("table missing tier:\n%s", buf.String())
	}
}
