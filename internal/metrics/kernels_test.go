package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleKernelReport() *KernelReport {
	return &KernelReport{
		Title:     "kernel sweep",
		GoVersion: "go1.24.0",
		Arch:      "amd64",
		CPUs:      1,
		Results: []KernelResult{
			{Kernel: "gemm", Shape: "TN m=121 n=121 k=121", Workload: "benzene",
				Count: 12, Iters: 100, NsPerOp: 125000, BytesPerOp: 351384, MBPerSec: 2811, GFlops: 28.3},
			{Kernel: "sort4", Shape: "11x11x11x11 perm=[2 0 3 1]", Workload: "benzene",
				Count: 4, Iters: 5000, NsPerOp: 17000, BytesPerOp: 234256, MBPerSec: 13780},
		},
	}
}

func TestKernelReportJSONRoundTrip(t *testing.T) {
	r := sampleKernelReport()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back KernelReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 2 || back.Results[0].GFlops != 28.3 || back.Results[1].Kernel != "sort4" {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	// The data-movement kernel reports no flops field at all.
	if strings.Contains(buf.String(), `"gflops": 0`) {
		t.Fatalf("zero gflops should be omitted:\n%s", buf.String())
	}
}

func TestKernelReportTable(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleKernelReport().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"kernel sweep", "TN m=121 n=121 k=121", "28.30", "sort4"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
