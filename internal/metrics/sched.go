package metrics

import (
	"fmt"
	"io"
	"strings"
)

// SchedRow is one shared-memory scheduler measurement: a (configuration,
// worker count) cell with the counters the sharded runtime reports
// (runtime.SchedStats). It is a plain value so this package stays a
// formatter with no dependency on the runtime.
type SchedRow struct {
	Config  string // e.g. "pinned-steal" or "v5/shared"
	Workers int
	Tasks   int
	Seconds float64

	StealAttempts int64
	Steals        int64
	Parks         int64
	Wakes         int64
	MaxQueueDepth int
	// PerWorkerTasks feeds the imbalance column; may be nil.
	PerWorkerTasks []int64
}

// Imbalance returns max/mean of the per-worker task counts: 1.0 is a
// perfectly even split, W means one worker did everything. Returns 0
// when per-worker counts are unavailable.
func (r SchedRow) Imbalance() float64 {
	if len(r.PerWorkerTasks) == 0 {
		return 0
	}
	var sum, max int64
	for _, n := range r.PerWorkerTasks {
		sum += n
		if n > max {
			max = n
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(r.PerWorkerTasks))
	return float64(max) / mean
}

// StealHitRate returns the fraction of steal probes that won a task, or
// 0 when no probes happened (non-stealing modes).
func (r SchedRow) StealHitRate() float64 {
	if r.StealAttempts == 0 {
		return 0
	}
	return float64(r.Steals) / float64(r.StealAttempts)
}

// SchedTable accumulates scheduler measurements across configurations,
// the shared-memory analogue of the Fig 9 sweep: instead of simulated
// execution time per cores/node it reports the intra-node scheduling
// behavior the paper discusses in §IV-C/§IV-D (priority queues, work
// stealing between the per-thread ready queues).
type SchedTable struct {
	Title string
	Rows  []SchedRow
}

// Add appends a row.
func (t *SchedTable) Add(r SchedRow) { t.Rows = append(t.Rows, r) }

// WriteTable renders the measurements as an aligned text table.
func (t *SchedTable) WriteTable(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	header := fmt.Sprintf("%-20s %7s %8s %9s %14s %7s %7s %8s %9s",
		"config", "workers", "tasks", "time-s", "steals", "parks", "wakes", "maxdepth", "imbalance")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, r := range t.Rows {
		steals := "-"
		if r.StealAttempts > 0 {
			steals = fmt.Sprintf("%d/%d", r.Steals, r.StealAttempts)
		}
		imb := "-"
		if v := r.Imbalance(); v > 0 {
			imb = fmt.Sprintf("%.2f", v)
		}
		if _, err := fmt.Fprintf(w, "%-20s %7d %8d %9.3f %14s %7d %7d %8d %9s\n",
			r.Config, r.Workers, r.Tasks, r.Seconds, steals, r.Parks, r.Wakes, r.MaxQueueDepth, imb); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the measurements as CSV, one row per measurement.
func (t *SchedTable) WriteCSV(w io.Writer) error {
	cols := []string{"config", "workers", "tasks", "seconds",
		"steal_attempts", "steals", "parks", "wakes", "max_queue_depth", "imbalance"}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		row := []string{
			r.Config,
			fmt.Sprint(r.Workers),
			fmt.Sprint(r.Tasks),
			fmt.Sprintf("%.6f", r.Seconds),
			fmt.Sprint(r.StealAttempts),
			fmt.Sprint(r.Steals),
			fmt.Sprint(r.Parks),
			fmt.Sprint(r.Wakes),
			fmt.Sprint(r.MaxQueueDepth),
			fmt.Sprintf("%.4f", r.Imbalance()),
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
