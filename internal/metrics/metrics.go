// Package metrics formats experiment results: the Fig 9 series (execution
// time vs cores/node for the original code and the five PaRSEC variants)
// and the derived speedup claims the paper states in §V.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Series is one curve of Fig 9: execution time (seconds) per cores/node.
type Series struct {
	Name  string
	Times map[int]float64 // cores/node -> seconds
}

// Best returns the minimum time and the cores/node achieving it.
func (s Series) Best() (cores int, seconds float64) {
	first := true
	for c, t := range s.Times {
		if first || t < seconds || (t == seconds && c < cores) {
			cores, seconds, first = c, t, false
		}
	}
	return cores, seconds
}

// At returns the time at the given cores/node, or NaN-like zero and false.
func (s Series) At(cores int) (float64, bool) {
	t, ok := s.Times[cores]
	return t, ok
}

// Fig9 holds the full experiment: all series over a common cores axis.
type Fig9 struct {
	Title  string
	Cores  []int
	Series []Series
}

// Add appends a series.
func (f *Fig9) Add(s Series) { f.Series = append(f.Series, s) }

// Get returns the named series.
func (f *Fig9) Get(name string) (Series, bool) {
	for _, s := range f.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// WriteTable renders the experiment as an aligned text table with one row
// per series and one column per cores/node.
func (f *Fig9) WriteTable(w io.Writer) error {
	cores := append([]int(nil), f.Cores...)
	sort.Ints(cores)
	if _, err := fmt.Fprintf(w, "%s\n", f.Title); err != nil {
		return err
	}
	header := fmt.Sprintf("%-16s", "variant")
	for _, c := range cores {
		header += fmt.Sprintf("%10s", fmt.Sprintf("%d c/n", c))
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, s := range f.Series {
		row := fmt.Sprintf("%-16s", s.Name)
		for _, c := range cores {
			if t, ok := s.Times[c]; ok {
				row += fmt.Sprintf("%10.2f", t)
			} else {
				row += fmt.Sprintf("%10s", "-")
			}
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the experiment as CSV (series per row).
func (f *Fig9) WriteCSV(w io.Writer) error {
	cores := append([]int(nil), f.Cores...)
	sort.Ints(cores)
	cols := make([]string, 0, len(cores)+1)
	cols = append(cols, "variant")
	for _, c := range cores {
		cols = append(cols, fmt.Sprintf("cores_%d", c))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, s := range f.Series {
		row := []string{s.Name}
		for _, c := range cores {
			if t, ok := s.Times[c]; ok {
				row = append(row, fmt.Sprintf("%.4f", t))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Claims are the quantitative statements of §V derived from Fig 9.
type Claims struct {
	// OriginalSpeedup3 is the original code's speedup at 3 cores/node
	// over 1 core/node (paper: 2.35x).
	OriginalSpeedup3 float64
	// OriginalBestCores and OriginalBestSpeedup locate the original
	// code's best configuration (paper: 7 cores/node, 2.69x).
	OriginalBestCores   int
	OriginalBestSpeedup float64
	// BestVariant and BestOverOriginal compare the fastest PaRSEC variant
	// at max cores against the original's best run (paper: v5, 2.1x).
	BestVariant      string
	BestOverOriginal float64
	// SpreadAtMax is fastest/slowest PaRSEC variant at max cores
	// (paper: 1.73x).
	SpreadAtMax       float64
	SlowestVariantMax string
}

// DeriveClaims computes the §V claims from a Fig 9 result. The original
// series must be named "original"; variant series "v1".."v5". maxCores is
// the rightmost point of the sweep.
func DeriveClaims(f *Fig9, maxCores int) (Claims, error) {
	var c Claims
	orig, ok := f.Get("original")
	if !ok {
		return c, fmt.Errorf("metrics: no original series")
	}
	o1, ok1 := orig.At(1)
	o3, ok3 := orig.At(3)
	if ok1 && ok3 && o3 > 0 {
		c.OriginalSpeedup3 = o1 / o3
	}
	bc, bt := orig.Best()
	c.OriginalBestCores = bc
	if bt > 0 && ok1 {
		c.OriginalBestSpeedup = o1 / bt
	}
	bestT, worstT := 0.0, 0.0
	for _, s := range f.Series {
		if s.Name == "original" {
			continue
		}
		t, ok := s.At(maxCores)
		if !ok {
			continue
		}
		if c.BestVariant == "" || t < bestT {
			c.BestVariant, bestT = s.Name, t
		}
		if c.SlowestVariantMax == "" || t > worstT {
			c.SlowestVariantMax, worstT = s.Name, t
		}
	}
	if bestT > 0 {
		c.BestOverOriginal = bt / bestT
		c.SpreadAtMax = worstT / bestT
	}
	return c, nil
}

// String renders the claims side by side with the paper's numbers.
func (c Claims) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "original speedup @3 cores/node:      %.2fx (paper: 2.35x)\n", c.OriginalSpeedup3)
	fmt.Fprintf(&b, "original best: %d cores/node, speedup %.2fx (paper: 7 cores, 2.69x)\n",
		c.OriginalBestCores, c.OriginalBestSpeedup)
	fmt.Fprintf(&b, "best PaRSEC variant at max cores:    %s, %.2fx over original best (paper: v5, 2.1x)\n",
		c.BestVariant, c.BestOverOriginal)
	fmt.Fprintf(&b, "fastest/slowest PaRSEC spread:       %.2fx, slowest %s (paper: 1.73x, v1)\n",
		c.SpreadAtMax, c.SlowestVariantMax)
	return b.String()
}
