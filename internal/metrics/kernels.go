package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// KernelResult is one measured kernel configuration of the -kernels
// sweep: a (kernel, tile shape) pair taken from a real workload, with
// its benchmark numbers.
type KernelResult struct {
	// Kernel names the operation: "gemm" (the production blocked path)
	// or "sort4" (the permutation kernel).
	Kernel string `json:"kernel"`
	// Shape is a human-readable shape key, e.g. "TN m=121 n=121 k=121"
	// or "36x37x36x37 perm=[2 0 3 1]".
	Shape string `json:"shape"`
	// Workload is the molecule preset the shape was harvested from.
	Workload string `json:"workload"`
	// Count is how many times the shape occurs in that workload.
	Count int `json:"count"`
	// Iters is the number of benchmark iterations measured.
	Iters int `json:"iters"`
	// NsPerOp is the measured wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is the memory the operation touches (inputs + outputs).
	BytesPerOp int64 `json:"bytes_per_op"`
	// MBPerSec is BytesPerOp normalized by time.
	MBPerSec float64 `json:"mb_per_sec"`
	// GFlops is the arithmetic rate; zero for pure data-movement kernels.
	GFlops float64 `json:"gflops,omitempty"`
}

// KernelReport is the BENCH_kernels.json baseline: the dense-kernel
// layer measured over the tile shapes the real workloads produce.
type KernelReport struct {
	// Title describes the sweep.
	Title string `json:"title"`
	// GoVersion, Arch and CPUs pin the environment the baseline was
	// taken on; compare like with like.
	GoVersion string `json:"go_version"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	// Tier is the micro-kernel dispatch tier the sweep ran on
	// ("portable", "avx2", "avx512"); empty in baselines taken before
	// tiered dispatch existed.
	Tier    string         `json:"tier,omitempty"`
	Results []KernelResult `json:"results"`
}

// Compare checks this report against a baseline and returns one message
// per kernel row that regressed: same (kernel, shape, workload) key,
// ns/op more than tolFrac above the baseline's. Rows new in either
// report are ignored (the sweep tracks workloads, so keys come and go),
// as is everything when the environments differ — cross-machine or
// cross-tier ns/op comparisons would flag hardware, not code.
func (r *KernelReport) Compare(base *KernelReport, tolFrac float64) []string {
	if base == nil {
		return nil
	}
	if r.Arch != base.Arch || r.CPUs != base.CPUs || r.Tier != base.Tier {
		return []string{fmt.Sprintf(
			"environment changed (%s/%d cpus/%q vs %s/%d cpus/%q): baseline not comparable, skipping row checks",
			r.Arch, r.CPUs, r.Tier, base.Arch, base.CPUs, base.Tier)}
	}
	type key struct{ kernel, shape, workload string }
	old := make(map[key]KernelResult, len(base.Results))
	for _, res := range base.Results {
		old[key{res.Kernel, res.Shape, res.Workload}] = res
	}
	var msgs []string
	for _, res := range r.Results {
		b, ok := old[key{res.Kernel, res.Shape, res.Workload}]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		if res.NsPerOp > b.NsPerOp*(1+tolFrac) {
			msgs = append(msgs, fmt.Sprintf("%s %s (%s): %.0f ns/op vs baseline %.0f (+%.1f%%)",
				res.Kernel, res.Shape, res.Workload, res.NsPerOp, b.NsPerOp,
				100*(res.NsPerOp/b.NsPerOp-1)))
		}
	}
	return msgs
}

// WriteJSON writes the report as indented JSON.
func (r *KernelReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable writes the report as an aligned text table.
func (r *KernelReport) WriteTable(w io.Writer) error {
	env := fmt.Sprintf("go %s %s, %d cpus", r.GoVersion, r.Arch, r.CPUs)
	if r.Tier != "" {
		env += ", " + r.Tier + " kernels"
	}
	if _, err := fmt.Fprintf(w, "%s\n%s\n\n", r.Title, env); err != nil {
		return err
	}
	header := fmt.Sprintf("%-7s %-34s %-13s %6s %12s %10s %9s",
		"kernel", "shape", "workload", "count", "ns/op", "MB/s", "GFlop/s")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, res := range r.Results {
		gf := "-"
		if res.GFlops > 0 {
			gf = fmt.Sprintf("%.2f", res.GFlops)
		}
		if _, err := fmt.Fprintf(w, "%-7s %-34s %-13s %6d %12.0f %10.0f %9s\n",
			res.Kernel, res.Shape, res.Workload, res.Count, res.NsPerOp, res.MBPerSec, gf); err != nil {
			return err
		}
	}
	return nil
}
