package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// KernelResult is one measured kernel configuration of the -kernels
// sweep: a (kernel, tile shape) pair taken from a real workload, with
// its benchmark numbers.
type KernelResult struct {
	// Kernel names the operation: "gemm" (the production blocked path)
	// or "sort4" (the permutation kernel).
	Kernel string `json:"kernel"`
	// Shape is a human-readable shape key, e.g. "TN m=121 n=121 k=121"
	// or "36x37x36x37 perm=[2 0 3 1]".
	Shape string `json:"shape"`
	// Workload is the molecule preset the shape was harvested from.
	Workload string `json:"workload"`
	// Count is how many times the shape occurs in that workload.
	Count int `json:"count"`
	// Iters is the number of benchmark iterations measured.
	Iters int `json:"iters"`
	// NsPerOp is the measured wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is the memory the operation touches (inputs + outputs).
	BytesPerOp int64 `json:"bytes_per_op"`
	// MBPerSec is BytesPerOp normalized by time.
	MBPerSec float64 `json:"mb_per_sec"`
	// GFlops is the arithmetic rate; zero for pure data-movement kernels.
	GFlops float64 `json:"gflops,omitempty"`
}

// KernelReport is the BENCH_kernels.json baseline: the dense-kernel
// layer measured over the tile shapes the real workloads produce.
type KernelReport struct {
	// Title describes the sweep.
	Title string `json:"title"`
	// GoVersion, Arch and CPUs pin the environment the baseline was
	// taken on; compare like with like.
	GoVersion string         `json:"go_version"`
	Arch      string         `json:"arch"`
	CPUs      int            `json:"cpus"`
	Results   []KernelResult `json:"results"`
}

// WriteJSON writes the report as indented JSON.
func (r *KernelReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable writes the report as an aligned text table.
func (r *KernelReport) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\ngo %s %s, %d cpus\n\n", r.Title, r.GoVersion, r.Arch, r.CPUs); err != nil {
		return err
	}
	header := fmt.Sprintf("%-7s %-34s %-13s %6s %12s %10s %9s",
		"kernel", "shape", "workload", "count", "ns/op", "MB/s", "GFlop/s")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, res := range r.Results {
		gf := "-"
		if res.GFlops > 0 {
			gf = fmt.Sprintf("%.2f", res.GFlops)
		}
		if _, err := fmt.Fprintf(w, "%-7s %-34s %-13s %6d %12.0f %10.0f %9s\n",
			res.Kernel, res.Shape, res.Workload, res.Count, res.NsPerOp, res.MBPerSec, gf); err != nil {
			return err
		}
	}
	return nil
}
