// Package cluster models the distributed-memory machine on which the
// reproduced experiments run: a set of nodes, each with a fixed number of
// cores, a shared memory subsystem, and a NIC, connected by a network with
// a fixed latency. It substitutes for the 32-node Cascade partition used
// in the paper (see DESIGN.md §2).
//
// The model is first-order but mechanistic: cores execute task bodies for
// flops/rate seconds, memory-bound phases move bytes through a node-wide
// processor-sharing bandwidth, transfers move bytes through the
// requester's NIC, and the Global Arrays packing factor inflates the cost
// of strided block transfers. All constants live in Config so experiments
// can sweep them.
package cluster

import (
	"fmt"

	"parsec/internal/fault"
	"parsec/internal/sim"
)

// Config holds every knob of the machine model.
type Config struct {
	Nodes        int     // number of nodes
	CoresPerNode int     // worker cores usable per node
	CoreGFlops   float64 // per-core dense GEMM rate, GFlop/s
	MemBWBytes   float64 // per-node memory bandwidth shared by all cores, bytes/s
	NICBWBytes   float64 // per-node NIC injection bandwidth, bytes/s
	NetLatency   sim.Time
	AtomicRTT    sim.Time // round-trip of one remote atomic (NXTVAL)
	MutexLock    sim.Time // system-wide cost of locking the node write mutex
	MutexUnlock  sim.Time
	// GemmMemTraffic scales the memory traffic of a GEMM kernel relative
	// to its operand footprint (A+B+C bytes): blocked DGEMM re-streams
	// panels from DRAM several times, so concurrent GEMMs on one node
	// contend for memory bandwidth and per-node throughput saturates
	// below core count — the intra-node scaling ceiling visible in every
	// Fig 9 series.
	GemmMemTraffic float64
	// GemmContention is the co-running degradation coefficient of GEMM
	// kernels on one node: with n concurrent GEMMs each runs at
	// CoreGFlops / (1 + GemmContention*(n-1)). Real nodes saturate well
	// below cores x per-core peak (shared caches, memory bandwidth, turbo
	// scaling, runtime helper threads); the paper's own Fig 9 shows
	// PaRSEC's per-node throughput saturating near 3x its one-core rate
	// at 15 cores, which this coefficient is calibrated to. 0 disables.
	GemmContention float64
	// GemmTeam models intra-task parallel GEMM (the runtime's worker
	// lending): each large GEMM kernel is split across up to GemmTeam
	// cores of its node, finishing in 1/(1 + GemmTeamEff*(GemmTeam-1))
	// of its serial time. The lent cores are drawn from the same node
	// budget, so the speedup only materializes when the schedule leaves
	// cores idle — exactly the regime lending targets. 0 or 1 disables
	// (the default; calibrated experiment outputs are unchanged).
	GemmTeam int
	// GemmTeamEff is the per-extra-core efficiency of a split GEMM, in
	// [0,1]: column partitioning duplicates A-panel packing and shares
	// memory bandwidth, so each helper contributes less than a full
	// core. Ignored unless GemmTeam >= 2.
	GemmTeamEff float64
	// GAStrideLatency is the per-contiguous-run cost of a remote Global
	// Arrays GET/ACC, charged on the requester: a strided 4-index block
	// moves as one message per row, and this per-message overhead is why
	// GET_HASH_BLOCK rectangles in Fig 13 are comparable in length to
	// GEMMs.
	GAStrideLatency sim.Time
	// GAServiceBW is the per-node bandwidth at which the Global Arrays
	// one-sided layer services remote strided accesses to data this node
	// owns (the ARMCI/progress-engine rate, far below the NIC rate). It
	// is the hard floor of the original code's communication time.
	GAServiceBW float64
	// GAContention is the co-running degradation coefficient of the GA
	// service engine. Values above 1 make aggregate service throughput
	// fall as concurrent remote accesses pile up (progress-engine lock
	// contention) — the reason the original code deteriorates beyond its
	// best cores/node point (§V) and shared-counter-style structures are
	// "bound to become inefficient at large scale" (§III-A).
	GAContention float64
	// CacheWarm scales the memory traffic of an operation whose input was
	// just produced by the same worker (locality discount; drives the
	// v5-over-v3 advantage the paper attributes to data locality).
	CacheWarm float64
	// JitterFrac perturbs modeled durations by ±frac uniformly, standing
	// in for machine noise; 0 disables.
	JitterFrac float64
	Seed       uint64
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cluster: Nodes = %d", c.Nodes)
	case c.CoresPerNode <= 0:
		return fmt.Errorf("cluster: CoresPerNode = %d", c.CoresPerNode)
	case !(c.CoreGFlops > 0):
		return fmt.Errorf("cluster: CoreGFlops = %v", c.CoreGFlops)
	case !(c.MemBWBytes > 0):
		return fmt.Errorf("cluster: MemBWBytes = %v", c.MemBWBytes)
	case !(c.NICBWBytes > 0):
		return fmt.Errorf("cluster: NICBWBytes = %v", c.NICBWBytes)
	case !(c.GAServiceBW > 0):
		return fmt.Errorf("cluster: GAServiceBW = %v", c.GAServiceBW)
	case c.GAStrideLatency < 0:
		return fmt.Errorf("cluster: GAStrideLatency = %v", c.GAStrideLatency)
	case c.GemmContention < 0 || c.GemmContention > 1:
		return fmt.Errorf("cluster: GemmContention = %v (must be in [0,1])", c.GemmContention)
	case c.GAContention < 0 || c.GAContention > 4:
		return fmt.Errorf("cluster: GAContention = %v (must be in [0,4])", c.GAContention)
	case c.GemmMemTraffic < 0:
		return fmt.Errorf("cluster: GemmMemTraffic = %v (must be >= 0)", c.GemmMemTraffic)
	case c.GemmTeam < 0 || c.GemmTeam > c.CoresPerNode:
		return fmt.Errorf("cluster: GemmTeam = %d (must be in [0,CoresPerNode])", c.GemmTeam)
	case c.GemmTeamEff < 0 || c.GemmTeamEff > 1:
		return fmt.Errorf("cluster: GemmTeamEff = %v (must be in [0,1])", c.GemmTeamEff)
	case c.CacheWarm <= 0 || c.CacheWarm > 1:
		return fmt.Errorf("cluster: CacheWarm = %v (must be in (0,1])", c.CacheWarm)
	}
	return nil
}

// CascadeLike returns a configuration sized after one 32-node partition of
// the PNNL Cascade system used in the paper's evaluation (§V): dual-socket
// Xeon nodes (16 usable cores), FDR InfiniBand, Global Arrays over MPI.
// Rates are calibrated, not measured (see EXPERIMENTS.md).
func CascadeLike() Config {
	return Config{
		Nodes:           32,
		CoresPerNode:    16,
		CoreGFlops:      18,
		MemBWBytes:      55e9,
		NICBWBytes:      1.2e9,
		NetLatency:      3 * sim.Microsecond,
		AtomicRTT:       6 * sim.Microsecond,
		MutexLock:       2 * sim.Microsecond,
		MutexUnlock:     2 * sim.Microsecond,
		GemmMemTraffic:  8,
		GemmContention:  0.286,
		GAStrideLatency: 47 * sim.Microsecond,
		GAServiceBW:     0.21e9,
		GAContention:    0,
		CacheWarm:       0.35,
		JitterFrac:      0.04,
		Seed:            0x5eed,
	}
}

// Small returns a 4-node, 4-core configuration for fast tests.
func Small() Config {
	c := CascadeLike()
	c.Nodes = 4
	c.CoresPerNode = 4
	return c
}

// Node is one machine node: identity plus its shared resources.
type Node struct {
	ID    int
	MemBW *sim.PS
	NIC   *sim.PS
	// GemmPS is the node's aggregate GEMM throughput (flops/s), with a
	// per-flow cap at one core's rate.
	GemmPS *sim.PS
	// GASrv is the node's Global Arrays one-sided service engine: remote
	// strided accesses to blocks this node owns are served through it.
	GASrv *sim.PS
	// WriteMutex is the node-wide mutex protecting Global Array updates by
	// the PaRSEC WRITE tasks (§IV-A).
	WriteMutex *sim.Mutex
}

// Machine instantiates the model on a simulation engine.
type Machine struct {
	Cfg   Config
	Eng   *sim.Engine
	Nodes []*Node
	rng   *sim.RNG
	// faults, when non-nil, perturbs the machine: straggler nodes run
	// compute/GEMM/memory charges slower, and the executor layers draw
	// transfer and GA-service faults from it. Nil means fault-free.
	faults *fault.Injector
}

// New builds a machine from the configuration. It panics on an invalid
// configuration (programmer error).
func New(eng *sim.Engine, cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{Cfg: cfg, Eng: eng, rng: sim.NewRNG(cfg.Seed)}
	m.Nodes = make([]*Node, cfg.Nodes)
	for i := range m.Nodes {
		gemm := sim.NewPS(eng, fmt.Sprintf("gemm%d", i), float64(cfg.CoresPerNode+1)*cfg.CoreGFlops*1e9)
		gemm.SetPerFlowCap(cfg.CoreGFlops * 1e9)
		if cfg.GemmContention > 0 {
			gemm.SetContention(cfg.GemmContention)
		}
		m.Nodes[i] = &Node{
			ID:         i,
			MemBW:      sim.NewPS(eng, fmt.Sprintf("mem%d", i), cfg.MemBWBytes),
			NIC:        sim.NewPS(eng, fmt.Sprintf("nic%d", i), cfg.NICBWBytes),
			GemmPS:     gemm,
			GASrv:      newGASrv(eng, i, cfg),
			WriteMutex: sim.NewMutex(eng, cfg.MutexLock, cfg.MutexUnlock),
		}
	}
	return m
}

// newGASrv builds one node's GA one-sided service engine.
func newGASrv(eng *sim.Engine, i int, cfg Config) *sim.PS {
	srv := sim.NewPS(eng, fmt.Sprintf("gasrv%d", i), cfg.GAServiceBW)
	if cfg.GAContention > 0 {
		srv.SetPerFlowCap(cfg.GAServiceBW)
		srv.SetContention(cfg.GAContention)
	}
	return srv
}

// TotalCores returns Nodes * CoresPerNode.
func (m *Machine) TotalCores() int { return m.Cfg.Nodes * m.Cfg.CoresPerNode }

// SetFaults installs a fault injector on the machine. Pass nil to
// restore fault-free behavior. Executors built on this machine consult
// the same injector for transfer and GA-service faults, so one seeded
// schedule perturbs every layer coherently.
func (m *Machine) SetFaults(inj *fault.Injector) { m.faults = inj }

// Faults returns the installed injector (nil when fault-free). A nil
// injector is safe to call, so callers need not check.
func (m *Machine) Faults() *fault.Injector { return m.faults }

func (m *Machine) jitter(d sim.Time) sim.Time {
	return m.rng.Jitter(d, m.Cfg.JitterFrac)
}

// ComputeTime returns the modeled duration of a compute-bound kernel with
// the given flop count, before jitter.
func (m *Machine) ComputeTime(flops int64) sim.Time {
	return sim.Duration(float64(flops) / (m.Cfg.CoreGFlops * 1e9))
}

// Compute occupies the calling worker for a kernel of the given flop count
// plus its memory traffic through the node's shared bandwidth. warm marks
// the traffic as cache-resident (locality discount).
func (m *Machine) Compute(p *sim.Proc, node int, flops, memBytes int64, warm bool) {
	if flops > 0 {
		p.Hold(m.faults.ScaleCompute(node, m.jitter(m.ComputeTime(flops))))
	}
	m.MemOp(p, node, memBytes, warm)
}

// MemOp occupies the calling worker for a memory-bound phase moving the
// given number of bytes through the node's shared memory bandwidth.
func (m *Machine) MemOp(p *sim.Proc, node int, bytes int64, warm bool) {
	if bytes <= 0 {
		return
	}
	amount := float64(bytes)
	if warm {
		amount *= m.Cfg.CacheWarm
	}
	if scaled := m.faults.ScaleAmount(node, amount); scaled != amount {
		// Record the un-contended excess; contention can stretch it more,
		// so the attribution ledger stays conservative.
		m.faults.NoteExcess(node, sim.Duration((scaled-amount)/m.Cfg.MemBWBytes))
		amount = scaled
	}
	m.Nodes[node].MemBW.Use(p, amount)
}

// Transfer moves bytes between nodes on behalf of the calling process
// (which blocks for the duration). Cost: network latency plus the bytes
// through the requesting node's NIC, shared with all concurrent traffic on
// that NIC. Local transfers (src == dst) cost one pass through node memory
// bandwidth instead.
func (m *Machine) Transfer(p *sim.Proc, reqNode, otherNode int, bytes int64) {
	if bytes <= 0 {
		return
	}
	if reqNode == otherNode {
		m.Nodes[reqNode].MemBW.Use(p, float64(bytes))
		return
	}
	p.Hold(m.jitter(m.Cfg.NetLatency))
	m.Nodes[reqNode].NIC.Use(p, float64(bytes))
}

// Gemm occupies the calling worker for one GEMM kernel: its flops drawn
// through the node's aggregate GEMM throughput (capped per flow at one
// core's rate), plus its DRAM traffic — the operand footprint scaled by
// GemmMemTraffic — through the node's shared memory bandwidth.
func (m *Machine) Gemm(p *sim.Proc, node int, flops, footprintBytes int64) {
	if flops > 0 {
		jf := float64(m.jitter(sim.Time(flops)))
		if scaled := m.faults.ScaleAmount(node, jf); scaled != jf {
			m.faults.NoteExcess(node, sim.Duration((scaled-jf)/(m.Cfg.CoreGFlops*1e9)))
			jf = scaled
		}
		// Intra-task team split: the kernel's serial critical path
		// shrinks by the modeled team speedup (the lent cores' work is
		// hidden inside this flow rather than charged separately).
		if m.Cfg.GemmTeam >= 2 {
			jf /= 1 + m.Cfg.GemmTeamEff*float64(m.Cfg.GemmTeam-1)
		}
		m.Nodes[node].GemmPS.Use(p, jf)
	}
	if footprintBytes > 0 {
		m.Nodes[node].MemBW.Use(p, m.Cfg.GemmMemTraffic*float64(footprintBytes))
	}
}

// GALocalAccess blocks the calling process for a Global Arrays strided
// access to a block owned by the local node: no wire, but still the
// library's locked gather/scatter path through the one-sided engine.
func (m *Machine) GALocalAccess(p *sim.Proc, node int, bytes int64) {
	if bytes <= 0 {
		return
	}
	m.Nodes[node].GASrv.Use(p, float64(bytes))
}

// GARemoteAccess blocks the calling process for one remote Global Arrays
// strided GET or ACC: per-row message overhead on the requester, service
// through the owner's one-sided engine, and the raw bytes through the
// requester's NIC.
func (m *Machine) GARemoteAccess(p *sim.Proc, reqNode, owner int, bytes int64, rows int) {
	if bytes <= 0 {
		return
	}
	if rows < 1 {
		rows = 1
	}
	p.Hold(m.jitter(sim.Time(rows) * m.Cfg.GAStrideLatency))
	m.Nodes[owner].GASrv.Use(p, float64(bytes))
	p.Hold(m.jitter(m.Cfg.NetLatency))
	m.Nodes[reqNode].NIC.Use(p, float64(bytes))
}
