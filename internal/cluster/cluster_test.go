package cluster

import (
	"fmt"
	"testing"

	"parsec/internal/sim"
)

func cfgNoJitter() Config {
	c := Small()
	c.JitterFrac = 0
	return c
}

func TestValidate(t *testing.T) {
	good := CascadeLike()
	if err := good.Validate(); err != nil {
		t.Fatalf("CascadeLike invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.CoresPerNode = -1 },
		func(c *Config) { c.CoreGFlops = 0 },
		func(c *Config) { c.MemBWBytes = 0 },
		func(c *Config) { c.NICBWBytes = -1 },
		func(c *Config) { c.GAServiceBW = 0 },
		func(c *Config) { c.GAStrideLatency = -1 },
		func(c *Config) { c.GemmContention = -1 },
		func(c *Config) { c.GemmContention = 1.5 },
		func(c *Config) { c.CacheWarm = 0 },
		func(c *Config) { c.CacheWarm = 1.5 },
	}
	for i, mutate := range bad {
		c := CascadeLike()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestComputeTime(t *testing.T) {
	e := sim.NewEngine()
	c := cfgNoJitter()
	c.CoreGFlops = 10
	m := New(e, c)
	// 10 GFlop at 10 GFlop/s = 1 s.
	if got := m.ComputeTime(10e9); got != sim.Second {
		t.Errorf("ComputeTime = %v, want 1s", got)
	}
}

func TestComputeOccupiesWorker(t *testing.T) {
	e := sim.NewEngine()
	c := cfgNoJitter()
	c.CoreGFlops = 1
	c.MemBWBytes = 1e9
	m := New(e, c)
	var end sim.Time
	e.Go("w", func(p *sim.Proc) {
		m.Compute(p, 0, 1e9, 1e9, false) // 1s compute + 1s memory
		end = p.Now()
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if end < 1990*sim.Millisecond || end > 2010*sim.Millisecond {
		t.Errorf("end = %v, want ~2s", end)
	}
}

func TestMemOpWarmDiscount(t *testing.T) {
	e := sim.NewEngine()
	c := cfgNoJitter()
	c.MemBWBytes = 1e9
	c.CacheWarm = 0.25
	m := New(e, c)
	var cold, warm sim.Time
	e.Go("w", func(p *sim.Proc) {
		t0 := p.Now()
		m.MemOp(p, 0, 1e9, false)
		cold = p.Now() - t0
		t0 = p.Now()
		m.MemOp(p, 0, 1e9, true)
		warm = p.Now() - t0
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if cold < 990*sim.Millisecond || cold > 1010*sim.Millisecond {
		t.Errorf("cold = %v, want ~1s", cold)
	}
	ratio := warm.Seconds() / cold.Seconds()
	if ratio < 0.24 || ratio > 0.26 {
		t.Errorf("warm/cold = %v, want ~0.25", ratio)
	}
}

func TestTransferRemoteUsesNICAndLatency(t *testing.T) {
	e := sim.NewEngine()
	c := cfgNoJitter()
	c.NICBWBytes = 1e9
	c.NetLatency = sim.Millisecond
	m := New(e, c)
	var plain sim.Time
	e.Go("w", func(p *sim.Proc) {
		t0 := p.Now()
		m.Transfer(p, 0, 1, 1e6) // 1ms latency + 1ms wire
		plain = p.Now() - t0
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if plain < 1990*sim.Microsecond || plain > 2010*sim.Microsecond {
		t.Errorf("plain transfer = %v, want ~2ms", plain)
	}
}

func TestGARemoteAccess(t *testing.T) {
	e := sim.NewEngine()
	c := cfgNoJitter()
	c.NICBWBytes = 1e9
	c.NetLatency = 0
	c.GAStrideLatency = 10 * sim.Microsecond
	c.GAServiceBW = 0.5e9
	m := New(e, c)
	var el sim.Time
	e.Go("w", func(p *sim.Proc) {
		// 100 rows x 10us = 1ms stride overhead, 1MB/0.5GB/s = 2ms
		// service, 1MB/1GB/s = 1ms wire -> 4ms total.
		m.GARemoteAccess(p, 0, 1, 1e6, 100)
		el = p.Now()
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if el < 3990*sim.Microsecond || el > 4010*sim.Microsecond {
		t.Errorf("GA remote access = %v, want ~4ms", el)
	}
}

func TestGemmContention(t *testing.T) {
	e := sim.NewEngine()
	c := cfgNoJitter()
	c.CoreGFlops = 10
	c.GemmContention = 0.5
	c.GemmMemTraffic = 0
	m := New(e, c)
	var ends [4]sim.Time
	for i := 0; i < 4; i++ {
		i := i
		e.Go(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			m.Gemm(p, 0, 10e9, 0) // 1s at full core rate
			ends[i] = p.Now()
		})
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	// 4 concurrent GEMMs: each runs at 10/(1+0.5*3) = 4 GFlop/s while all
	// four are active -> all finish together at ~2.5s.
	for i, end := range ends {
		if end < 2480*sim.Millisecond || end > 2520*sim.Millisecond {
			t.Errorf("gemm %d ended at %v, want ~2.5s", i, end)
		}
	}
}

func TestGemmSingleFlowAtCoreRate(t *testing.T) {
	e := sim.NewEngine()
	c := cfgNoJitter()
	c.CoreGFlops = 10
	c.GemmContention = 0.5
	c.GemmMemTraffic = 0
	m := New(e, c)
	var end sim.Time
	e.Go("w", func(p *sim.Proc) {
		m.Gemm(p, 0, 10e9, 0)
		end = p.Now()
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	// One flow is capped at the core rate, not the node capacity.
	if end < 990*sim.Millisecond || end > 1010*sim.Millisecond {
		t.Errorf("single gemm = %v, want ~1s (core-rate bound)", end)
	}
}

func TestTransferLocalUsesMemBW(t *testing.T) {
	e := sim.NewEngine()
	c := cfgNoJitter()
	c.MemBWBytes = 1e9
	c.NetLatency = sim.Second // would be obvious if charged
	m := New(e, c)
	var el sim.Time
	e.Go("w", func(p *sim.Proc) {
		m.Transfer(p, 2, 2, 1e6)
		el = p.Now()
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if el < 990*sim.Microsecond || el > 1010*sim.Microsecond {
		t.Errorf("local transfer = %v, want ~1ms (no net latency)", el)
	}
}

func TestNICContention(t *testing.T) {
	e := sim.NewEngine()
	c := cfgNoJitter()
	c.NICBWBytes = 1e9
	c.NetLatency = 0
	m := New(e, c)
	var latest sim.Time
	const n = 4
	for i := 0; i < n; i++ {
		e.Go(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			m.Transfer(p, 0, 1, 1e6)
			if p.Now() > latest {
				latest = p.Now()
			}
		})
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := sim.Duration(n * 1e6 / 1e9)
	if latest < want-10*sim.Microsecond || latest > want+10*sim.Microsecond {
		t.Errorf("contended makespan = %v, want ~%v", latest, want)
	}
}

func TestZeroByteOpsFree(t *testing.T) {
	e := sim.NewEngine()
	m := New(e, cfgNoJitter())
	e.Go("w", func(p *sim.Proc) {
		m.MemOp(p, 0, 0, false)
		m.Transfer(p, 0, 1, 0)
		m.Compute(p, 0, 0, 0, false)
		if p.Now() != 0 {
			t.Errorf("zero-cost ops advanced time to %v", p.Now())
		}
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestTotalCores(t *testing.T) {
	e := sim.NewEngine()
	c := cfgNoJitter()
	c.Nodes, c.CoresPerNode = 8, 3
	if got := New(e, c).TotalCores(); got != 24 {
		t.Errorf("TotalCores = %d, want 24", got)
	}
}

func TestDeterminismWithJitter(t *testing.T) {
	run := func() sim.Time {
		e := sim.NewEngine()
		c := Small()
		c.JitterFrac = 0.1
		m := New(e, c)
		for i := 0; i < 8; i++ {
			node := i % c.Nodes
			e.Go(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
				m.Compute(p, node, 1e8, 1e6, false)
				m.Transfer(p, node, (node+1)%c.Nodes, 1e5)
			})
		}
		end, err := e.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic end time: %v vs %v", first, got)
		}
	}
}

func TestGALocalAccess(t *testing.T) {
	e := sim.NewEngine()
	c := cfgNoJitter()
	c.GAServiceBW = 0.5e9
	m := New(e, c)
	var el sim.Time
	e.Go("w", func(p *sim.Proc) {
		m.GALocalAccess(p, 0, 1e6) // 1MB at 0.5 GB/s = 2ms
		m.GALocalAccess(p, 0, 0)   // free
		el = p.Now()
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if el < 1990*sim.Microsecond || el > 2010*sim.Microsecond {
		t.Errorf("local GA access = %v, want ~2ms", el)
	}
}

func TestGemmZeroFlopsFree(t *testing.T) {
	e := sim.NewEngine()
	m := New(e, cfgNoJitter())
	e.Go("w", func(p *sim.Proc) {
		m.Gemm(p, 0, 0, 0)
		if p.Now() != 0 {
			t.Errorf("zero gemm advanced time")
		}
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}
