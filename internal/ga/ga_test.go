package ga

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"parsec/internal/cluster"
	"parsec/internal/sim"
	"parsec/internal/tensor"
)

func TestDistributionDeterministicAndInRange(t *testing.T) {
	d := Distribution{Nodes: 7}
	seen := map[int]int{}
	for i := 0; i < 500; i++ {
		key := tensor.BlockKey{i % 9, i % 5, i % 3, i}
		o1 := d.Owner("t2", key)
		o2 := d.Owner("t2", key)
		if o1 != o2 {
			t.Fatal("Owner not deterministic")
		}
		if o1 < 0 || o1 >= 7 {
			t.Fatalf("Owner %d out of range", o1)
		}
		seen[o1]++
	}
	// Balance: every node should own something over 500 blocks.
	for n := 0; n < 7; n++ {
		if seen[n] == 0 {
			t.Errorf("node %d owns no blocks", n)
		}
	}
}

func TestDistributionNameMatters(t *testing.T) {
	d := Distribution{Nodes: 16}
	same, diff := 0, 0
	for i := 0; i < 100; i++ {
		key := tensor.BlockKey{i, i + 1, i + 2, i + 3}
		if d.Owner("t2", key) == d.Owner("v2", key) {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Error("tensor name has no effect on placement")
	}
}

// Property: ownership is stable under Nodes and spread over all nodes for
// enough blocks.
func TestPropertyDistribution(t *testing.T) {
	f := func(nodes uint8, a, b, c, dd int16) bool {
		n := int(nodes%32) + 1
		d := Distribution{Nodes: n}
		o := d.Owner("x", tensor.BlockKey{int(a), int(b), int(c), int(dd)})
		return o >= 0 && o < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStoreGetAddRoundtrip(t *testing.T) {
	s := NewStore(4)
	s.Create("i0")
	key := tensor.BlockKey{1, 2, 3, 4}
	src := tensor.NewTile4(2, 2, 2, 2)
	src.FillRandom(1, 1)
	s.AddHashBlock("i0", key, src, 2)
	got := s.GetHashBlock("i0", key)
	want := tensor.NewTile4(2, 2, 2, 2)
	want.AddScaled(src, 2)
	if got.MaxAbsDiff(want) != 0 {
		t.Error("Add/Get roundtrip mismatch")
	}
	// GetHashBlock must return a copy.
	got.Data[0] = 1e9
	if s.GetHashBlock("i0", key).Data[0] == 1e9 {
		t.Error("GetHashBlock aliases stored data")
	}
}

func TestStoreConcurrentAdd(t *testing.T) {
	s := NewStore(2)
	s.Create("i0")
	key := tensor.BlockKey{0, 0, 0, 0}
	src := tensor.NewTile4(3, 3, 1, 1)
	for i := range src.Data {
		src.Data[i] = 1
	}
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.AddHashBlock("i0", key, src, 1)
		}()
	}
	wg.Wait()
	for _, v := range s.GetHashBlock("i0", key).Data {
		if v != n {
			t.Fatalf("lost updates: %v != %d", v, n)
		}
	}
}

func TestStoreNxtVal(t *testing.T) {
	s := NewStore(1)
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[int64]bool{}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				v := s.NxtVal()
				mu.Lock()
				if seen[v] {
					t.Errorf("duplicate ticket %d", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != 800 {
		t.Errorf("tickets = %d, want 800", len(seen))
	}
	s.ResetCounter()
	if v := s.NxtVal(); v != 0 {
		t.Errorf("after reset NxtVal = %d", v)
	}
}

func TestStoreCreateDuplicatePanics(t *testing.T) {
	s := NewStore(1)
	s.Create("x")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Create("x")
}

func TestStoreMissingArrayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewStore(1).Array("nope")
}

func TestSimGetChargesRemotePath(t *testing.T) {
	e := sim.NewEngine()
	cfg := cluster.Small()
	cfg.JitterFrac = 0
	cfg.NICBWBytes = 1e9
	cfg.NetLatency = 0
	cfg.GAStrideLatency = 10 * sim.Microsecond
	cfg.GAServiceBW = 0.5e9
	m := cluster.New(e, cfg)
	g := NewSim(m)
	var remote, local sim.Time
	e.Go("w", func(p *sim.Proc) {
		t0 := p.Now()
		g.GetHashBlock(p, 0, 1, 1e6, 100) // 1ms strides + 2ms service + 1ms wire
		remote = p.Now() - t0
		t0 = p.Now()
		g.GetHashBlock(p, 1, 1, 1e6, 100) // local: 2MB through MemBW
		local = p.Now() - t0
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if remote < 3990*sim.Microsecond || remote > 4010*sim.Microsecond {
		t.Errorf("remote GET took %v, want ~4ms", remote)
	}
	if local >= remote {
		t.Errorf("local GET (%v) not cheaper than remote (%v)", local, remote)
	}
	gets, accs := g.Stats()
	if gets != 2 || accs != 0 {
		t.Errorf("stats = %d gets, %d accs", gets, accs)
	}
}

func TestSimNxtValSerializes(t *testing.T) {
	e := sim.NewEngine()
	cfg := cluster.Small()
	cfg.AtomicRTT = 10 * sim.Microsecond
	m := cluster.New(e, cfg)
	g := NewSim(m)
	var latest sim.Time
	const clients = 8
	for i := 0; i < clients; i++ {
		e.Go(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			g.NxtVal(p)
			if p.Now() > latest {
				latest = p.Now()
			}
		})
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(clients) * cfg.AtomicRTT
	if latest != want {
		t.Errorf("8 serialized NXTVALs finished at %v, want %v", latest, want)
	}
}

func TestSimNxtValUnique(t *testing.T) {
	e := sim.NewEngine()
	m := cluster.New(e, cluster.Small())
	g := NewSim(m)
	var vals []int64
	for i := 0; i < 4; i++ {
		e.Go(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			for j := 0; j < 5; j++ {
				vals = append(vals, g.NxtVal(p))
			}
		})
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, v := range vals {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	if len(vals) != 20 {
		t.Errorf("tickets = %d", len(vals))
	}
}

func TestStoreAccessZeroCopy(t *testing.T) {
	s := NewStore(2)
	s.Create("t2")
	key := tensor.BlockKey{1, 1, 1, 1}
	src := tensor.NewTile4(2, 2, 1, 1)
	src.FillRandom(9, 1)
	s.AddHashBlock("t2", key, src, 1)
	// ga_access returns the stored tile itself, not a copy.
	a1 := s.Access("t2", key)
	a2 := s.Access("t2", key)
	if a1 != a2 {
		t.Error("Access returned different pointers")
	}
	if s.GetHashBlock("t2", key) == a1 {
		t.Error("GetHashBlock did not copy")
	}
}

func TestSimAccRemoteUsesOneSidedPath(t *testing.T) {
	e := sim.NewEngine()
	cfg := cluster.Small()
	cfg.JitterFrac = 0
	cfg.NetLatency = 0
	cfg.GAStrideLatency = 10 * sim.Microsecond
	cfg.GAServiceBW = 0.5e9
	cfg.NICBWBytes = 1e9
	m := cluster.New(e, cfg)
	g := NewSim(m)
	var remote, local sim.Time
	e.Go("w", func(p *sim.Proc) {
		t0 := p.Now()
		g.AddHashBlock(p, 0, 1, 1e6, 100) // strides 1ms + service 2ms + wire 1ms
		remote = p.Now() - t0
		t0 = p.Now()
		g.AddHashBlock(p, 1, 1, 1e6, 100) // local: through GASrv only
		local = p.Now() - t0
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if remote < 3990*sim.Microsecond || remote > 4010*sim.Microsecond {
		t.Errorf("remote ACC = %v, want ~4ms", remote)
	}
	if local >= remote {
		t.Errorf("local ACC (%v) not cheaper than remote (%v)", local, remote)
	}
	gets, accs := g.Stats()
	if gets != 0 || accs != 2 {
		t.Errorf("stats = %d gets, %d accs", gets, accs)
	}
}

func TestDistributionSingleNode(t *testing.T) {
	d := Distribution{Nodes: 1}
	for i := 0; i < 20; i++ {
		if d.Owner("x", tensor.BlockKey{i, 0, 0, 0}) != 0 {
			t.Fatal("single-node owner != 0")
		}
	}
}

func TestDistributionZeroNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Distribution{}.Owner("x", tensor.BlockKey{})
}

func TestSimResetNxtVal(t *testing.T) {
	e := sim.NewEngine()
	m := cluster.New(e, cluster.Small())
	g := NewSim(m)
	var first, second int64
	e.Go("w", func(p *sim.Proc) {
		g.NxtVal(p)
		first = g.NxtVal(p)
		g.ResetNxtVal()
		second = g.NxtVal(p)
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if first != 1 || second != 0 {
		t.Errorf("tickets = %d, %d; want 1, 0", first, second)
	}
}

func TestAccRangeSegmentsSumToFullAdd(t *testing.T) {
	s := NewStore(4)
	s.Create("i0")
	key := tensor.BlockKey{0, 1, 2, 3}
	src := tensor.NewTile4(3, 3, 2, 2)
	src.FillRandom(5, 1)
	// Three disjoint segments must together equal one full accumulate.
	n := src.Len()
	for seg := 0; seg < 3; seg++ {
		s.AccRange("i0", key, src, 2, seg*n/3, (seg+1)*n/3)
	}
	want := tensor.NewTile4(3, 3, 2, 2)
	want.AddScaled(src, 2)
	if d := s.GetHashBlock("i0", key).MaxAbsDiff(want); d != 0 {
		t.Errorf("segmented accumulate differs by %g", d)
	}
}

func TestAccRangeBoundsError(t *testing.T) {
	s := NewStore(1)
	s.Create("i0")
	src := tensor.NewTile4(2, 2, 1, 1)
	if err := s.AccRange("i0", tensor.BlockKey{}, src, 1, 2, 99); err == nil {
		t.Error("expected out-of-range error")
	}
	if err := s.AccOrdered("i0", tensor.BlockKey{}, src, 1, 0, -1, 2); err == nil {
		t.Error("expected out-of-range error from AccOrdered")
	}
	// Dimension mismatch with an existing block reports, not panics.
	if err := s.AddHashBlock("i0", tensor.BlockKey{}, src, 1); err != nil {
		t.Fatalf("first accumulate: %v", err)
	}
	other := tensor.NewTile4(3, 3, 1, 1)
	if err := s.AddHashBlock("i0", tensor.BlockKey{}, other, 1); err == nil {
		t.Error("expected dimension-mismatch error")
	}
}

func TestAccRangeConcurrentSegments(t *testing.T) {
	s := NewStore(1)
	s.Create("i0")
	key := tensor.BlockKey{}
	src := tensor.NewTile4(4, 4, 2, 2)
	for i := range src.Data {
		src.Data[i] = 1
	}
	n := src.Len()
	const span = 8
	const rounds = 16
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for seg := 0; seg < span; seg++ {
			wg.Add(1)
			go func(seg int) {
				defer wg.Done()
				s.AccRange("i0", key, src, 1, seg*n/span, (seg+1)*n/span)
			}(seg)
		}
	}
	wg.Wait()
	for _, v := range s.GetHashBlock("i0", key).Data {
		if v != rounds {
			t.Fatalf("lost segment updates: %v != %d", v, rounds)
		}
	}
}

// TestAccOrderedRetriedOutOfOrder is the deadlock/duplication regression
// for fault-injected runs: AccOrdered contributions arrive with shuffled
// (out-of-order) Ctx.Seq tags, one of them retransmitted (a retried ACC
// after a lost ack), while a reader concurrently flushes through Array.
// The fold must terminate (no accMu/rangeMu deadlock), suppress the
// duplicate, and produce floats bitwise identical to the in-order fold.
func TestAccOrderedRetriedOutOfOrder(t *testing.T) {
	fold := func(order []int, retry int) []float64 {
		s := NewStore(2)
		s.Create("c")
		s.Create("other")
		key := tensor.BlockKey{1, 0, 0, 0}
		srcs := make([]*tensor.Tile4, 8)
		for i := range srcs {
			srcs[i] = tensor.NewTile4(2, 2, 2, 2)
			srcs[i].FillRandom(uint64(i+1), 1)
		}
		var wg sync.WaitGroup
		done := make(chan struct{})
		go func() { // concurrent flusher: must not deadlock against writers
			defer close(done)
			for i := 0; i < 50; i++ {
				// Flushing a sibling array contends on the same ordered-
				// accumulation lock without touching "c"'s pending buffer
				// ("c" itself is only read at quiescence, as documented).
				s.Array("other")
			}
		}()
		for _, tag := range order {
			wg.Add(1)
			go func(tag int) {
				defer wg.Done()
				if err := s.AccOrdered("c", key, srcs[tag], 0.5, tag, 0, srcs[tag].Len()); err != nil {
					t.Errorf("AccOrdered tag %d: %v", tag, err)
				}
				if tag == retry {
					// Retransmission: identical tag, segment, scale, tile.
					if err := s.AccOrdered("c", key, srcs[tag], 0.5, tag, 0, srcs[tag].Len()); err != nil {
						t.Errorf("retried AccOrdered: %v", err)
					}
				}
			}(tag)
		}
		wg.Wait()
		<-done
		return append([]float64(nil), s.GetHashBlock("c", key).Data...)
	}

	inOrder := fold([]int{0, 1, 2, 3, 4, 5, 6, 7}, -1)
	shuffled := fold([]int{5, 2, 7, 0, 3, 6, 1, 4}, 3)
	for i := range inOrder {
		if inOrder[i] != shuffled[i] {
			t.Fatalf("element %d differs: %v vs %v (retried/out-of-order fold not deterministic)", i, inOrder[i], shuffled[i])
		}
	}
}

// TestAccRangeStripedLocksCorrect pins the striped-lock refactor: heavy
// concurrent AccRange traffic across many distinct (array, block) keys —
// far more keys than stripes, so stripe collisions are guaranteed — must
// lose no updates, and same-block writers must still serialize.
func TestAccRangeStripedLocksCorrect(t *testing.T) {
	s := NewStore(4)
	arrays := []string{"c2", "x1", "i1"}
	for _, a := range arrays {
		s.Create(a)
	}
	const blocks = 128 // 384 keys over 64 stripes
	const writers = 4  // concurrent writers per key
	src := tensor.NewTile4(4, 4, 2, 2)
	for i := range src.Data {
		src.Data[i] = 1
	}
	var wg sync.WaitGroup
	for _, a := range arrays {
		for b := 0; b < blocks; b++ {
			key := tensor.BlockKey{b, b % 7, 0, 0}
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(a string, key tensor.BlockKey) {
					defer wg.Done()
					if err := s.AccRange(a, key, src, 1, 0, src.Len()); err != nil {
						t.Errorf("AccRange %s %v: %v", a, key, err)
					}
				}(a, key)
			}
		}
	}
	wg.Wait()
	for _, a := range arrays {
		for b := 0; b < blocks; b++ {
			key := tensor.BlockKey{b, b % 7, 0, 0}
			for i, v := range s.GetHashBlock(a, key).Data {
				if v != writers {
					t.Fatalf("%s %v element %d = %v, want %d (lost update under striping)",
						a, key, i, v, writers)
				}
			}
		}
	}
}

// TestRangeLockDeterministicAndSpread pins the stripe chooser: the same
// (array, block) always maps to the same stripe, and distinct keys use
// more than a handful of distinct stripes (the refactor's whole point).
func TestRangeLockDeterministicAndSpread(t *testing.T) {
	s := NewStore(1)
	used := map[*sync.Mutex]bool{}
	for b := 0; b < 256; b++ {
		key := tensor.BlockKey{b, 2 * b, 0, 1}
		m1 := s.rangeLock("c2", key)
		m2 := s.rangeLock("c2", key)
		if m1 != m2 {
			t.Fatalf("stripe for block %d not deterministic", b)
		}
		used[m1] = true
	}
	if len(used) < rangeStripes/2 {
		t.Errorf("256 keys landed on only %d of %d stripes", len(used), rangeStripes)
	}
	if s.rangeLock("c2", tensor.BlockKey{1, 0, 0, 0}) == s.rangeLock("x1", tensor.BlockKey{1, 0, 0, 0}) &&
		s.rangeLock("c2", tensor.BlockKey{2, 0, 0, 0}) == s.rangeLock("x1", tensor.BlockKey{2, 0, 0, 0}) &&
		s.rangeLock("c2", tensor.BlockKey{3, 0, 0, 0}) == s.rangeLock("x1", tensor.BlockKey{3, 0, 0, 0}) {
		t.Error("array name appears to be ignored by the stripe hash")
	}
}
