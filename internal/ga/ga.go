// Package ga is a Global Arrays substrate: the "shared-memory
// programming interface for distributed-memory computers" (§II-A) that
// NWChem's TCE-generated code is written against. It provides the calls
// the paper names — GET_HASH_BLOCK, ADD_HASH_BLOCK, the NXTVAL shared
// counter, and the distribution queries (ga_distribution / ga_access)
// that the PaRSEC inspection phase uses to locate data (§IV-B).
//
// Two implementations share the Distribution placement logic:
//
//   - Store: a real in-memory array store for shared-memory execution
//     (unit tests, the goroutine runtime, the examples).
//   - Sim: cost-model operations against the simulated cluster, used by
//     the CGP baseline and PaRSEC executors in the Fig 9 experiments.
package ga

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"parsec/internal/cluster"
	"parsec/internal/sim"
	"parsec/internal/tensor"
)

// Distribution maps blocks of named tensors onto nodes. Blocks are
// distributed by a deterministic hash, approximating GA's blocked
// distribution of the TCE hash arrays: placement is balanced and fixed
// before execution, and every rank can compute any block's owner locally.
type Distribution struct{ Nodes int }

// Owner returns the node owning the given block of the named tensor.
func (d Distribution) Owner(tensorName string, key tensor.BlockKey) int {
	if d.Nodes <= 0 {
		panic("ga: Distribution with no nodes")
	}
	h := uint64(14695981039346656037)
	for _, c := range []byte(tensorName) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	for _, k := range key {
		h = (h ^ uint64(uint32(k))) * 1099511628211
	}
	return int(h % uint64(d.Nodes))
}

// API is the Global Arrays surface task bodies are written against: the
// zero-copy local read (ga_access), the copying fetch (GET_HASH_BLOCK),
// and the ordered accumulate that keeps results bitwise deterministic.
// Store implements it in one address space; internal/netrun implements
// it over sockets, reading inputs from a rank-local replica and shipping
// accumulations to the GA server process. Graph builders take an API so
// the same task bodies drive both.
type API interface {
	Access(name string, key tensor.BlockKey) *tensor.Tile4
	GetHashBlock(name string, key tensor.BlockKey) *tensor.Tile4
	AccOrdered(name string, key tensor.BlockKey, src *tensor.Tile4, scale float64, tag, lo, hi int) error
}

// Store is the real, shared-memory Global Arrays implementation: named
// block tensors plus a shared counter. All methods are safe for
// concurrent use.
type Store struct {
	dist    Distribution
	tensors map[string]*tensor.BlockTensor4
	counter atomic.Int64
	// rangeLocks stripes AccRange's serialization by (array, block):
	// concurrent segment updates to different blocks proceed in
	// parallel, while writers to the same block still serialize (their
	// segments may overlap). A single global mutex here was the hottest
	// lock in the parallel-writes graphs.
	rangeLocks [rangeStripes]sync.Mutex

	accMu   sync.Mutex // guards pending ordered accumulations
	pending map[string]map[tensor.BlockKey][]orderedAcc
}

// rangeStripes is the AccRange lock-stripe count: enough that tens of
// workers hashing random (array, block) pairs rarely collide, small
// enough to stay a few cache lines.
const rangeStripes = 64

// rangeLock returns the stripe serializing updates to one block, chosen
// by the same FNV hash family as Owner.
func (s *Store) rangeLock(name string, key tensor.BlockKey) *sync.Mutex {
	h := uint64(14695981039346656037)
	for _, c := range []byte(name) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	for _, k := range key {
		h = (h ^ uint64(uint32(k))) * 1099511628211
	}
	return &s.rangeLocks[h%rangeStripes]
}

// orderedAcc is one buffered AccOrdered contribution awaiting the
// deterministic fold performed by Array.
type orderedAcc struct {
	tag    int
	lo, hi int
	scale  float64
	src    *tensor.Tile4
}

var _ API = (*Store)(nil)

// NewStore returns a store distributed (logically) over the given number
// of nodes. The node count only affects Owner queries; data lives in one
// address space.
func NewStore(nodes int) *Store {
	return &Store{
		dist:    Distribution{Nodes: nodes},
		tensors: make(map[string]*tensor.BlockTensor4),
		pending: make(map[string]map[tensor.BlockKey][]orderedAcc),
	}
}

// Distribution returns the store's placement function.
func (s *Store) Distribution() Distribution { return s.dist }

// Create registers an empty named array. Creating an existing name panics.
func (s *Store) Create(name string) *tensor.BlockTensor4 {
	if _, dup := s.tensors[name]; dup {
		panic(fmt.Sprintf("ga: array %q already exists", name))
	}
	bt := tensor.NewBlockTensor4()
	s.tensors[name] = bt
	return bt
}

// Array returns the named array, panicking if absent. Intended for
// result extraction after execution; concurrent mutation must go through
// GetHashBlock / AddHashBlock.
func (s *Store) Array(name string) *tensor.BlockTensor4 {
	bt, ok := s.tensors[name]
	if !ok {
		panic(fmt.Sprintf("ga: no array %q", name))
	}
	s.flushOrdered(name, bt)
	return bt
}

// GetHashBlock fetches a copy of a block, like GET_HASH_BLOCK copying
// from the distributed array into a local buffer.
func (s *Store) GetHashBlock(name string, key tensor.BlockKey) *tensor.Tile4 {
	return s.Array(name).MustTile(key).Clone()
}

// Access returns a direct reference to a block's storage without
// copying — ga_access, which the PaRSEC port uses for its zero-copy
// reads at the owning node (§IV-B). Callers must not mutate the tile.
func (s *Store) Access(name string, key tensor.BlockKey) *tensor.Tile4 {
	return s.Array(name).MustTile(key)
}

// AddHashBlock atomically accumulates scale*src into a block, creating it
// zeroed if absent — ADD_HASH_BLOCK's Corig += Csorted. A dimension
// mismatch with an existing block is reported as an error (task bodies
// reach this surface, and under injected faults a panic here would tear
// down the whole runtime instead of failing one task).
func (s *Store) AddHashBlock(name string, key tensor.BlockKey, src *tensor.Tile4, scale float64) error {
	return s.Array(name).AccChecked(key, src, scale)
}

// AccRange atomically accumulates scale*src[lo:hi] into the element range
// [lo, hi) of a block: the per-segment update a WRITE_C instance performs
// when the block spans several nodes (Fig 8) and each instance owns one
// contiguous slice. Out-of-range segments are reported as errors.
func (s *Store) AccRange(name string, key tensor.BlockKey, src *tensor.Tile4, scale float64, lo, hi int) error {
	if lo < 0 || hi > src.Len() || lo > hi {
		return fmt.Errorf("ga: AccRange [%d,%d) of %d elements", lo, hi, src.Len())
	}
	bt := s.Array(name)
	dst := bt.GetOrCreate(key, src.Dim)
	mu := s.rangeLock(name, key)
	mu.Lock()
	tensor.Axpy(dst.Data[lo:hi], src.Data[lo:hi], scale)
	mu.Unlock()
	return nil
}

// AccOrdered buffers an ADD_HASH_BLOCK-style accumulation of
// scale*src[lo:hi], tagged with a schedule-independent ordinal (the
// runtime passes the task instance's creation sequence). The buffered
// contributions are folded into the block in ascending (tag, lo) order
// the next time the array is read through Array, so the resulting
// floats are bitwise identical for every worker count, queue mode, and
// scheduling policy — the "ordered reduce" invariance of DESIGN §6,
// which a sharded scheduler can no longer get for free from lock
// serialization. The caller must not mutate src afterwards.
//
// Out-of-range segments are reported as errors rather than panics —
// this surface is reached from task bodies, and under fault injection a
// retried task must be able to fail cleanly. An exact duplicate of an
// already-buffered contribution (same tag, segment, scale, and source
// tile) is the signature of an at-least-once retransmission; it is
// suppressed at fold time, so a retried ACC never double-counts.
func (s *Store) AccOrdered(name string, key tensor.BlockKey, src *tensor.Tile4, scale float64, tag, lo, hi int) error {
	if lo < 0 || hi > src.Len() || lo > hi {
		return fmt.Errorf("ga: AccOrdered [%d,%d) of %d elements", lo, hi, src.Len())
	}
	s.accMu.Lock()
	m := s.pending[name]
	if m == nil {
		m = make(map[tensor.BlockKey][]orderedAcc)
		s.pending[name] = m
	}
	m[key] = append(m[key], orderedAcc{tag: tag, lo: lo, hi: hi, scale: scale, src: src})
	s.accMu.Unlock()
	return nil
}

// flushOrdered folds the named array's buffered contributions. Blocks
// are independent storage, so only the within-block order matters; that
// order is fixed by the (tag, lo) sort. Deterministic results require
// that all AccOrdered calls happened-before the triggering read (i.e.
// the graph reached quiescence), which the runtime guarantees.
func (s *Store) flushOrdered(name string, bt *tensor.BlockTensor4) {
	s.accMu.Lock()
	m := s.pending[name]
	delete(s.pending, name)
	s.accMu.Unlock()
	if len(m) == 0 {
		return
	}
	for key, accs := range m {
		sort.Slice(accs, func(i, j int) bool {
			if accs[i].tag != accs[j].tag {
				return accs[i].tag < accs[j].tag
			}
			return accs[i].lo < accs[j].lo
		})
		dst := bt.GetOrCreate(key, accs[0].src.Dim)
		for n, a := range accs {
			// Suppress retransmitted duplicates: after the (tag, lo) sort a
			// retried contribution sits next to its original.
			if n > 0 && accs[n-1] == a {
				continue
			}
			tensor.Axpy(dst.Data[a.lo:a.hi], a.src.Data[a.lo:a.hi], a.scale)
		}
	}
}

// NxtVal atomically fetches-and-increments the shared work-stealing
// counter (§IV-D) and returns the pre-increment value.
func (s *Store) NxtVal() int64 { return s.counter.Add(1) - 1 }

// ResetCounter rewinds the shared counter (between work levels).
func (s *Store) ResetCounter() { s.counter.Store(0) }

// Sim is the cost-model Global Arrays implementation for the simulated
// cluster. It carries no data: callers account for block sizes and the
// simulated machine charges transfer and contention costs.
type Sim struct {
	dist    Distribution
	mach    *cluster.Machine
	counter *sim.Counter

	gets, accs         atomic.Int64
	getBytes, accBytes atomic.Int64
}

// NewSim returns a simulated GA over the machine. The NXTVAL counter is
// served by a single FIFO server with the configured atomic round-trip
// time, which is exactly the scalability hazard §IV-D describes.
func NewSim(m *cluster.Machine) *Sim {
	return &Sim{
		dist:    Distribution{Nodes: m.Cfg.Nodes},
		mach:    m,
		counter: sim.NewCounter(m.Eng, m.Cfg.AtomicRTT),
	}
}

// Distribution returns the placement function (ga_distribution).
func (g *Sim) Distribution() Distribution { return g.dist }

// GetHashBlock blocks the calling process for the time to fetch a block
// owned by owner into reqNode's memory through the strided GA one-sided
// path: per-row message overhead, the owner's service engine, and the
// wire. rows is the number of contiguous runs in the block (its matrix
// row count). Local accesses cost a pass through node memory bandwidth.
func (g *Sim) GetHashBlock(p *sim.Proc, reqNode, owner int, bytes int64, rows int) {
	g.gets.Add(1)
	g.getBytes.Add(bytes)
	if reqNode == owner {
		g.mach.MemOp(p, reqNode, 2*bytes, false)
		return
	}
	g.mach.GARemoteAccess(p, reqNode, owner, bytes, rows)
}

// AddHashBlock blocks the calling process for the time to accumulate a
// block into owner's memory from reqNode (read-modify-write through the
// same one-sided path).
func (g *Sim) AddHashBlock(p *sim.Proc, reqNode, owner int, bytes int64, rows int) {
	g.accs.Add(1)
	g.accBytes.Add(bytes)
	if d := g.mach.Faults().AccHiccup(); d > 0 {
		p.Hold(d)
	}
	if reqNode == owner {
		// Even a local accumulate goes through the GA library's locked
		// strided update path, serviced by the node's one-sided engine.
		g.mach.GALocalAccess(p, owner, bytes)
		return
	}
	g.mach.GARemoteAccess(p, reqNode, owner, bytes, rows)
}

// NxtVal performs one remote atomic fetch-and-increment, serialized
// through the global counter server. A fault-injected service hiccup
// stretches the caller's round trip before it reaches the server.
func (g *Sim) NxtVal(p *sim.Proc) int64 {
	if d := g.mach.Faults().NxtValHiccup(); d > 0 {
		p.Hold(d)
	}
	return g.counter.Next(p)
}

// ResetNxtVal rewinds the shared counter. The TCE code does this between
// work levels, after the inter-level synchronization (§III-A); callers
// must ensure no process is mid-NxtVal (e.g. behind a barrier).
func (g *Sim) ResetNxtVal() { g.counter = sim.NewCounter(g.mach.Eng, g.mach.Cfg.AtomicRTT) }

// Stats returns the number of Get and Acc operations performed.
func (g *Sim) Stats() (gets, accs int64) { return g.gets.Load(), g.accs.Load() }

// ByteStats returns the payload volume moved by Get and Acc operations —
// the GET-vs-ACC communication split internal/obsv reports.
func (g *Sim) ByteStats() (getBytes, accBytes int64) {
	return g.getBytes.Load(), g.accBytes.Load()
}
