// fusion demonstrates the integration experiment of §III-B: today each
// ported subroutine pulls its inputs from the Global Array and pushes its
// outputs back (Fig 3); once neighboring code also runs over PaRSEC, the
// tasks of one subroutine feed the tasks of the next directly and the GA
// round trip disappears.
//
// The program runs the icsd_t2_7 kernel followed by the correlation-
// energy evaluation in both integrations on the simulated cluster, then
// validates the fused graph with real arithmetic on a small system.
//
// Run with: go run ./examples/fusion
package main

import (
	"fmt"
	"log"
	"math"

	"parsec"
	"parsec/internal/ccsd"
)

func main() {
	// Simulated comparison at scale.
	sys, err := parsec.Molecule("benzene")
	if err != nil {
		log.Fatal(err)
	}
	mcfg := parsec.Cascade()
	mcfg.Nodes = 8
	fmt.Printf("system: %v\nmachine: %d nodes x 7 cores/node\n\n", sys, mcfg.Nodes)

	res, err := ccsd.RunSimFusion(sys, mcfg, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("kernel + energy evaluation, two integrations:")
	fmt.Printf("  staged (Fig 3, GA round trip + barrier): %v\n", res.Staged)
	fmt.Printf("    = kernel %v + energy stage %v\n", res.StagedParts[0], res.StagedParts[1])
	fmt.Printf("  fused  (direct dataflow, §III-B):        %v\n", res.Fused)
	fmt.Printf("  gain: %.1f%%\n\n", 100*(1-res.Fused.Seconds()/res.Staged.Seconds()))

	// Real-arithmetic validation on water: fused result == reference.
	small, _ := parsec.Molecule("water")
	w := parsec.Inspect(small)
	ref := parsec.ReferenceEnergy(w)
	fused, err := ccsd.RunRealFused(w, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validation on %s (real arithmetic):\n", small.Name)
	fmt.Printf("  reference energy: %+.15e\n", ref)
	fmt.Printf("  fused energy:     %+.15e (rel diff %.1e)\n",
		fused, math.Abs(fused-ref)/math.Abs(ref))
}
