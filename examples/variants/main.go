// variants reproduces a compact version of the paper's Fig 9 on the
// simulated cluster: execution time of the original CGP code and the five
// PaRSEC variants across a cores-per-node sweep, followed by the derived
// §V claims (original saturation, best-variant speedup, variant spread).
// It uses the medium "benzene" preset so it finishes in seconds; run
// cmd/ccsim for the full beta-carotene / 32-node experiment.
//
// Run with: go run ./examples/variants
package main

import (
	"fmt"
	"log"
	"os"

	"parsec"
	"parsec/internal/metrics"
)

func main() {
	sys, err := parsec.Molecule("benzene")
	if err != nil {
		log.Fatal(err)
	}
	mcfg := parsec.Cascade()
	mcfg.Nodes = 8
	cores := []int{1, 3, 7, 11, 15}

	fmt.Printf("system: %v\n", sys)
	fmt.Printf("machine: %d nodes (scaled-down Fig 9; see cmd/ccsim for the full run)\n\n", mcfg.Nodes)

	fig := &metrics.Fig9{
		Title: fmt.Sprintf("Fig 9 (reduced): icsd_t2_7 on %d nodes using %s", mcfg.Nodes, sys.Name),
		Cores: cores,
	}

	orig := metrics.Series{Name: "original", Times: map[int]float64{}}
	for _, c := range cores {
		sec, err := parsec.SimulateBaseline(sys, mcfg, c, nil)
		if err != nil {
			log.Fatal(err)
		}
		orig.Times[c] = sec
	}
	fig.Add(orig)

	for _, spec := range parsec.Variants() {
		s := metrics.Series{Name: spec.Name, Times: map[int]float64{}}
		for _, c := range cores {
			res, err := parsec.Simulate(sys, spec, mcfg, parsec.SimConfig{CoresPerNode: c})
			if err != nil {
				log.Fatal(err)
			}
			s.Times[c] = res.Makespan.Seconds()
		}
		fig.Add(s)
	}

	if err := fig.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	claims, err := metrics.DeriveClaims(fig, cores[len(cores)-1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(claims)
}
