// inspector demonstrates the inspection phase of §III-B: the sliced
// control flow of the TCE-generated loop nest runs without any
// computation or communication and fills the metadata arrays — chain
// count (size_L1), per-chain length (size_L2), per-GEMM iteration vectors
// and block locations from the Global Arrays distribution — that the PTG
// later consults (Fig 1's mtdata lookups).
//
// Run with: go run ./examples/inspector [preset]
package main

import (
	"fmt"
	"log"
	"os"

	"parsec"
	"parsec/internal/ga"
	"parsec/internal/tce"
)

func main() {
	preset := "water"
	if len(os.Args) > 1 {
		preset = os.Args[1]
	}
	sys, err := parsec.Molecule(preset)
	if err != nil {
		log.Fatal(err)
	}
	// Place blocks on 4 logical nodes, as ga_distribution would report.
	dist := ga.Distribution{Nodes: 4}
	w := tce.Inspect(tce.T2_7(sys), func(b tce.BlockRef) int {
		return dist.Owner(b.Tensor, b.Key)
	})

	fmt.Printf("system: %v\n", sys)
	st := w.Stats()
	fmt.Printf("inspection found: %v\n\n", st)

	fmt.Printf("metadata arrays (as in §III-B):\n")
	fmt.Printf("  size_L1 (number of chains)      = %d\n", w.NumChains())
	fmt.Printf("  size_L2 (length of first chain) = %d\n\n", w.ChainLen(0))

	// Show the recorded metadata of the first chains, like the paper's
	// meta-data array dump: iteration vector, blocks, owners.
	show := w.NumChains()
	if show > 3 {
		show = 3
	}
	for _, c := range w.Chains[:show] {
		fmt.Printf("chain %d -> output block %v (owner node %d), %d GEMMs, %d sort branch(es):\n",
			c.ID, c.Out, c.OutNode, len(c.Gemms), len(c.Sorts))
		for pos, g := range c.Gemms {
			if pos == 4 {
				fmt.Printf("    ... %d more\n", len(c.Gemms)-4)
				break
			}
			fmt.Printf("    pos %2d: iter %v  A=%v@n%d  B=%v@n%d  (m=%d n=%d k=%d)\n",
				pos, g.Op.Iter, g.Op.A, g.ANode, g.Op.B, g.BNode, g.Op.M, g.Op.N, g.Op.K)
		}
		for _, s := range c.Sorts {
			fmt.Printf("    sort branch %d: perm %v, sign %+g\n", s.Branch, s.Perm, s.Sign)
		}
	}

	// Unique blocks to prefetch, per tensor — what the read tasks pull.
	fmt.Printf("\nunique blocks referenced: %s=%d, %s=%d, %s=%d\n",
		tce.TensorA, len(w.UniqueBlocks(tce.TensorA)),
		tce.TensorB, len(w.UniqueBlocks(tce.TensorB)),
		tce.TensorC, len(w.UniqueBlocks(tce.TensorC)))

	// Re-fetch factor: the original code fetches per GEMM, so popular
	// blocks cross the network many times.
	refetch := float64(2*st.Gemms) / float64(len(w.UniqueBlocks(tce.TensorA))+len(w.UniqueBlocks(tce.TensorB)))
	fmt.Printf("average fetches per unique input block (original code): %.2f\n", refetch)
}
