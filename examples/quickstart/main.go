// Quickstart: build the paper's Fig 1 PTG — chains of GEMMs, each chain
// accumulating into its own C matrix, ending in a SORT — with the public
// API and execute it on the shared-memory runtime with real matrices.
//
// The program defines four task classes (DFILL, READA, READB, GEMM and
// SORT) whose dataflow reads exactly like the PTG source in the paper:
//
//	RW C <- (L2 == 0) ? C DFILL(L1)
//	     <- (L2 != 0) ? C GEMM(L1, L2-1)
//	     -> (L2 <  last) ? C GEMM(L1, L2+1)
//	     -> (L2 == last) ? C SORT(L1)
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"parsec"
	"parsec/internal/tensor"
)

const (
	numChains = 4  // size_L1: number of independent chains
	chainLen  = 5  // size_L2: GEMMs per chain
	dim       = 16 // square tile edge
)

// input returns the deterministic A or B operand of GEMM (l1, l2).
func input(name string, l1, l2 int) *tensor.Matrix {
	t := tensor.NewTile4(dim, dim, 1, 1)
	t.FillRandom(uint64(l1*1000+l2*10+len(name)), 1)
	m := tensor.NewMatrix(dim, dim)
	copy(m.Data, t.Data)
	return m
}

func main() {
	g := parsec.NewGraph("fig1-quickstart")

	dfill := g.Class("DFILL")
	dfill.Domain = func(emit func(parsec.Args)) {
		for l1 := 0; l1 < numChains; l1++ {
			emit(parsec.A1(l1))
		}
	}
	// Priorities decrease with the chain number (§IV-C).
	dfill.Priority = func(a parsec.Args) int64 { return int64(numChains - a[0]) }
	dfill.AddFlow("C", parsec.Write).
		InNew(nil, func(a parsec.Args) int64 { return dim * dim * 8 }).
		Out(nil, func(a parsec.Args) (parsec.TaskRef, string) {
			return parsec.TaskRef{Class: "GEMM", Args: parsec.A2(a[0], 0)}, "C"
		})
	dfill.Body = func(ctx *parsec.Ctx) { ctx.Out[0] = tensor.NewMatrix(dim, dim) }

	// Reader classes supply A and B; in the paper these pull blocks from
	// the Global Array at the owning node (find_last_segment_owner).
	for _, name := range []string{"READA", "READB"} {
		name := name
		rc := g.Class(name)
		rc.Domain = func(emit func(parsec.Args)) {
			for l1 := 0; l1 < numChains; l1++ {
				for l2 := 0; l2 < chainLen; l2++ {
					emit(parsec.A2(l1, l2))
				}
			}
		}
		rc.Priority = func(a parsec.Args) int64 { return int64(numChains-a[0]) + 5 }
		flow := "A"
		if name == "READB" {
			flow = "B"
		}
		rc.AddFlow("D", parsec.Write).
			InData(nil, func(a parsec.Args) parsec.DataRef {
				return parsec.DataRef{ID: fmt.Sprintf("%s(%d,%d)", name, a[0], a[1])}
			}).
			Out(nil, func(a parsec.Args) (parsec.TaskRef, string) {
				return parsec.TaskRef{Class: "GEMM", Args: a}, flow
			})
		rc.Body = func(ctx *parsec.Ctx) { ctx.Out[0] = input(name, ctx.Args[0], ctx.Args[1]) }
	}

	gemm := g.Class("GEMM")
	gemm.Domain = func(emit func(parsec.Args)) {
		for l1 := 0; l1 < numChains; l1++ {
			for l2 := 0; l2 < chainLen; l2++ {
				emit(parsec.A2(l1, l2))
			}
		}
	}
	gemm.Priority = func(a parsec.Args) int64 { return int64(numChains-a[0]) + 1 }
	gemm.AddFlow("A", parsec.Read).In(nil, func(a parsec.Args) (parsec.TaskRef, string) {
		return parsec.TaskRef{Class: "READA", Args: a}, "D"
	})
	gemm.AddFlow("B", parsec.Read).In(nil, func(a parsec.Args) (parsec.TaskRef, string) {
		return parsec.TaskRef{Class: "READB", Args: a}, "D"
	})
	gemm.AddFlow("C", parsec.RW).
		In(func(a parsec.Args) bool { return a[1] == 0 },
			func(a parsec.Args) (parsec.TaskRef, string) {
				return parsec.TaskRef{Class: "DFILL", Args: parsec.A1(a[0])}, "C"
			}).
		In(nil, func(a parsec.Args) (parsec.TaskRef, string) {
			return parsec.TaskRef{Class: "GEMM", Args: parsec.A2(a[0], a[1]-1)}, "C"
		}).
		Out(func(a parsec.Args) bool { return a[1] < chainLen-1 },
			func(a parsec.Args) (parsec.TaskRef, string) {
				return parsec.TaskRef{Class: "GEMM", Args: parsec.A2(a[0], a[1]+1)}, "C"
			}).
		Out(func(a parsec.Args) bool { return a[1] == chainLen-1 },
			func(a parsec.Args) (parsec.TaskRef, string) {
				return parsec.TaskRef{Class: "SORT", Args: parsec.A1(a[0])}, "C"
			})
	gemm.Body = func(ctx *parsec.Ctx) {
		a := ctx.In[0].(*tensor.Matrix)
		b := ctx.In[1].(*tensor.Matrix)
		c := ctx.In[2].(*tensor.Matrix)
		tensor.Gemm(true, false, 1, a, b, 1, c) // dgemm('T','N',...) as in Fig 1
		ctx.Out[2] = c
	}

	results := make([]float64, numChains)
	sort := g.Class("SORT")
	sort.Domain = func(emit func(parsec.Args)) {
		for l1 := 0; l1 < numChains; l1++ {
			emit(parsec.A1(l1))
		}
	}
	sort.AddFlow("C", parsec.Read).In(nil, func(a parsec.Args) (parsec.TaskRef, string) {
		return parsec.TaskRef{Class: "GEMM", Args: parsec.A2(a[0], chainLen-1)}, "C"
	})
	sort.Body = func(ctx *parsec.Ctx) {
		c := ctx.In[0].(*tensor.Matrix)
		var sum float64
		for _, v := range c.Data {
			sum += v
		}
		results[ctx.Args[0]] = sum
	}

	rep, err := parsec.Run(g, parsec.RunConfig{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %s\n", rep)

	// Verify against a sequential evaluation of the same chains.
	for l1 := 0; l1 < numChains; l1++ {
		c := tensor.NewMatrix(dim, dim)
		for l2 := 0; l2 < chainLen; l2++ {
			tensor.Gemm(true, false, 1, input("READA", l1, l2), input("READB", l1, l2), 1, c)
		}
		var want float64
		for _, v := range c.Data {
			want += v
		}
		status := "ok"
		if diff := results[l1] - want; diff > 1e-9 || diff < -1e-9 {
			status = fmt.Sprintf("MISMATCH (diff %g)", diff)
		}
		fmt.Printf("chain %d: sum(C) = %+.6f  [%s]\n", l1, results[l1], status)
	}
}
