// jdfchain compiles the paper's Fig 1 PTG from its textual notation and
// executes it on the shared-memory runtime — the same computation as
// examples/quickstart, but with the task graph written the way the paper
// writes it (the "job data flow" source of Fig 1) instead of built
// programmatically.
//
// Run with: go run ./examples/jdfchain
package main

import (
	"fmt"
	"log"

	"parsec"
	"parsec/internal/tensor"
)

const source = `
# Fig 1 of the paper: GEMM tasks organized in chains.
# size_L1 chains; chain L1 holds size_L2(L1) serial GEMMs.

DFILL(L1)
  L1 = 0 .. size_L1 - 1
  WRITE C <- NEW(csize)
          -> C GEMM(L1, 0)
  ; size_L1 - L1
BODY dfill
END

READA(L1, L2)
  L1 = 0 .. size_L1 - 1
  L2 = 0 .. size_L2(L1) - 1
  WRITE D <- DATA ablock(L1, L2)
          -> A GEMM(L1, L2)
  ; size_L1 - L1 + 5 * P
BODY reada
END

READB(L1, L2)
  L1 = 0 .. size_L1 - 1
  L2 = 0 .. size_L2(L1) - 1
  WRITE D <- DATA bblock(L1, L2)
          -> B GEMM(L1, L2)
  ; size_L1 - L1 + 5 * P
BODY readb
END

GEMM(L1, L2)
  L1 = 0 .. size_L1 - 1
  L2 = 0 .. size_L2(L1) - 1
  READ A <- D READA(L1, L2)
  READ B <- D READB(L1, L2)
  RW C <- (L2 == 0) ? C DFILL(L1)
       <- C GEMM(L1, L2 - 1)
       -> (L2 < size_L2(L1) - 1) ? C GEMM(L1, L2 + 1)
       -> (L2 == size_L2(L1) - 1) ? C SORT(L1)
  ; size_L1 - L1 + P
BODY gemm
END

SORT(L1)
  L1 = 0 .. size_L1 - 1
  READ C <- C GEMM(L1, size_L2(L1) - 1)
  ; size_L1 - L1
BODY sort
END
`

const (
	numChains = 4
	dim       = 12
)

func chainLen(l1 int) int { return 4 + l1 }

func input(name string, l1, l2 int) *tensor.Matrix {
	t := tensor.NewTile4(dim, dim, 1, 1)
	t.FillRandom(uint64(l1*100+l2*10+len(name)), 1)
	m := tensor.NewMatrix(dim, dim)
	copy(m.Data, t.Data)
	return m
}

func main() {
	results := make([]*tensor.Matrix, numChains)
	env := parsec.JDFEnv{
		Consts: map[string]int{"size_L1": numChains, "P": 4, "csize": dim * dim * 8},
		Funcs: map[string]func(...int) int{
			"size_L2": func(a ...int) int { return chainLen(a[0]) },
		},
		Data: map[string]func(args []int) parsec.DataRef{
			"ablock": func(args []int) parsec.DataRef {
				return parsec.DataRef{ID: fmt.Sprintf("a(%d,%d)", args[0], args[1])}
			},
			"bblock": func(args []int) parsec.DataRef {
				return parsec.DataRef{ID: fmt.Sprintf("b(%d,%d)", args[0], args[1])}
			},
		},
		Bodies: map[string]func(*parsec.Ctx){
			"dfill": func(ctx *parsec.Ctx) { ctx.Out[0] = tensor.NewMatrix(dim, dim) },
			"reada": func(ctx *parsec.Ctx) { ctx.Out[0] = input("a", ctx.Args[0], ctx.Args[1]) },
			"readb": func(ctx *parsec.Ctx) { ctx.Out[0] = input("b", ctx.Args[0], ctx.Args[1]) },
			"gemm": func(ctx *parsec.Ctx) {
				a := ctx.In[0].(*tensor.Matrix)
				b := ctx.In[1].(*tensor.Matrix)
				c := ctx.In[2].(*tensor.Matrix)
				tensor.Gemm(true, false, 1, a, b, 1, c)
				ctx.Out[2] = c
			},
			"sort": func(ctx *parsec.Ctx) { results[ctx.Args[0]] = ctx.In[0].(*tensor.Matrix) },
		},
	}

	g, err := parsec.CompileJDF("fig1", source, env)
	if err != nil {
		log.Fatal(err)
	}
	counts, total := g.CountTasks()
	fmt.Printf("compiled %d task classes, %d instances (GEMM: %d)\n",
		len(g.Classes()), total, counts["GEMM"])

	rep, err := parsec.Run(g, parsec.RunConfig{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: %v\n", rep)

	for l1 := 0; l1 < numChains; l1++ {
		want := tensor.NewMatrix(dim, dim)
		for l2 := 0; l2 < chainLen(l1); l2++ {
			tensor.Gemm(true, false, 1, input("a", l1, l2), input("b", l1, l2), 1, want)
		}
		status := "ok"
		if d := results[l1].MaxAbsDiff(want); d > 1e-9 {
			status = fmt.Sprintf("MISMATCH %g", d)
		}
		var sum float64
		for _, v := range results[l1].Data {
			sum += v
		}
		fmt.Printf("chain %d (%d GEMMs): sum(C) = %+.6f [%s]\n", l1, chainLen(l1), sum, status)
	}
}
