// ccsd_t2_7 runs the ported CCSD subroutine with real tensor arithmetic:
// it inspects the TCE loop nest for a small molecule, executes all five
// algorithmic variants of §IV-A on the shared-memory runtime, and shows
// that every variant reproduces the serial reference's correlation-energy
// functional to ~14 digits — the paper's §IV-A claim that the reorderings
// preserve semantics ("the final result computed by the different
// variations matched up to the 14th digit").
//
// Run with: go run ./examples/ccsd_t2_7 [preset]
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"runtime"

	"parsec"
)

func main() {
	preset := "water"
	if len(os.Args) > 1 {
		preset = os.Args[1]
	}
	sys, err := parsec.Molecule(preset)
	if err != nil {
		log.Fatal(err)
	}
	w := parsec.Inspect(sys)
	fmt.Printf("system:   %v\n", sys)
	fmt.Printf("workload: %v\n\n", w.Stats())

	ref := parsec.ReferenceEnergy(w)
	fmt.Printf("serial reference energy: %+.15e\n\n", ref)

	workers := runtime.GOMAXPROCS(0)
	fmt.Printf("%-4s %-62s %22s %10s %s\n", "", "variant", "energy", "digits", "tasks")
	for _, spec := range parsec.Variants() {
		res, err := parsec.RunCCSD(w, spec, workers)
		if err != nil {
			log.Fatal(err)
		}
		digits := agreementDigits(res.Energy, ref)
		fmt.Printf("%-4s %-62s %+22.15e %10.1f %d\n",
			spec.Name, spec.Description, res.Energy, digits, res.Report.Tasks)
	}
	fmt.Println("\n(\"digits\" is -log10 of the relative difference from the reference;")
	fmt.Println(" 15.3 means agreement beyond the 15th digit — full double precision.)")
}

// agreementDigits returns the number of agreeing significant digits.
func agreementDigits(a, ref float64) float64 {
	d := math.Abs(a-ref) / math.Abs(ref)
	if d == 0 {
		return 16
	}
	return -math.Log10(d)
}
